package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"

	"github.com/pacsim/pac/internal/report"
	"github.com/pacsim/pac/internal/server"
	"github.com/pacsim/pac/internal/workload"
)

// SweepRequest is the body of POST /v1/sweep: one simulation per
// (benchmark, mode) pair, fanned out across the fleet by each pair's
// canonical routing key and merged into one table. Zero-valued option
// fields inherit the fleet base options, exactly like /v1/simulate.
type SweepRequest struct {
	// Benchmarks to sweep; empty means the canonical suite.
	Benchmarks []string `json:"benchmarks"`
	// Modes to sweep; empty means ["pac"].
	Modes []string `json:"modes"`

	Cores           int     `json:"cores"`
	AccessesPerCore int     `json:"accessesPerCore"`
	Scale           float64 `json:"scale"`
	Seed            uint64  `json:"seed"`
	L1Bytes         int     `json:"l1Bytes"`
	LLCBytes        int     `json:"llcBytes"`

	FaultLinkCRCRate        float64 `json:"faultLinkCrcRate"`
	FaultPoisonRate         float64 `json:"faultPoisonRate"`
	FaultVaultStallInterval int64   `json:"faultVaultStallInterval"`
	FaultVaultStallCycles   int64   `json:"faultVaultStallCycles"`
	FaultMaxReissues        int     `json:"faultMaxReissues"`
	FaultSeed               uint64  `json:"faultSeed"`
}

// simulateRequest builds the per-pair simulate body.
func (r SweepRequest) simulateRequest(bench, mode string) server.SimulateRequest {
	return server.SimulateRequest{
		Benchmark:               bench,
		Mode:                    mode,
		Cores:                   r.Cores,
		AccessesPerCore:         r.AccessesPerCore,
		Scale:                   r.Scale,
		Seed:                    r.Seed,
		L1Bytes:                 r.L1Bytes,
		LLCBytes:                r.LLCBytes,
		FaultLinkCRCRate:        r.FaultLinkCRCRate,
		FaultPoisonRate:         r.FaultPoisonRate,
		FaultVaultStallInterval: r.FaultVaultStallInterval,
		FaultVaultStallCycles:   r.FaultVaultStallCycles,
		FaultMaxReissues:        r.FaultMaxReissues,
		FaultSeed:               r.FaultSeed,
	}
}

// SweepRoute records where one cell of the merged table ran — fan-out
// metadata that varies with fleet layout, deliberately kept outside the
// table so the table itself is byte-identical across fleet sizes.
type SweepRoute struct {
	Benchmark string `json:"benchmark"`
	Mode      string `json:"mode"`
	Key       string `json:"key"`
	Backend   string `json:"backend"`
	Cached    bool   `json:"cached"`
	Attempts  int    `json:"attempts"`
}

// SweepResponse is the merged sweep payload.
type SweepResponse struct {
	// Table is the deterministic merge: rows in request order
	// (benchmark-major, mode-minor), each cell derived only from that
	// simulation's own result — never from completion order or fleet
	// layout. Text is its rendered form; both are byte-identical to a
	// single-node run of the same sweep.
	Table *report.Table `json:"table"`
	Text  string        `json:"text"`
	// Routes is the per-cell fan-out metadata (varies with fleet).
	Routes []SweepRoute `json:"routes"`
}

// sweepPair is one (benchmark, mode) cell with its pre-resolved routing
// key and forward body.
type sweepPair struct {
	bench, mode string
	key         string
	body        []byte
}

func (g *Gateway) handleSweep(w http.ResponseWriter, r *http.Request) {
	body, ok := g.readBody(w, r)
	if !ok {
		return
	}
	var req SweepRequest
	dec := json.NewDecoder(strings.NewReader(string(body)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	pairs, err := g.sweepPairs(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), g.cfg.SweepTimeout)
	defer cancel()
	g.reg.Counter("pac_gw_sweeps_total", "Sweep fan-outs started.").Inc()

	// Fan out: every pair dispatches by its own key, so the cells land
	// on (and warm) their canonical shards — but the dispatch ORDER is
	// grouped per shard, so each backend sees its cells back-to-back.
	// Consecutive arrival is what lets the backend's affinity batcher
	// and machine cache run the shard's cells warm instead of thrashing
	// between interleaved shapes. Results still slot into place by
	// original index; completion order never matters, so the merged
	// table stays byte-identical to the unordered fan-out.
	rows := make([]sweepRow, len(pairs))
	errs := make([]error, len(pairs))
	order := sweepDispatchOrder(pairs, func(key string) string {
		node, _ := g.ring.Owner(key)
		return node
	})
	workers := g.cfg.SweepConcurrency
	if workers > len(pairs) {
		workers = len(pairs)
	}
	if workers < 1 {
		workers = 1
	}
	feed := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range feed {
				rows[i], errs[i] = g.runSweepSim(ctx, pairs[i])
			}
		}()
	}
	for _, i := range order {
		feed <- i
	}
	close(feed)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			writeError(w, http.StatusBadGateway,
				fmt.Sprintf("sweep %s/%s: %v", pairs[i].bench, pairs[i].mode, err))
			return
		}
	}

	table := report.NewTable("sweep",
		"benchmark", "mode", "cycles", "rawRequests", "memPackets", "coalesceEff%")
	routes := make([]SweepRoute, len(rows))
	for i, row := range rows {
		p := pairs[i]
		eff := 0.0
		if row.RawRequests > 0 {
			eff = 100 * float64(row.RawRequests-(row.MemPackets-row.Reissues)) /
				float64(row.RawRequests)
		}
		table.AddRow(p.bench, p.mode, row.Cycles, row.RawRequests, row.MemPackets, eff)
		routes[i] = SweepRoute{
			Benchmark: p.bench, Mode: p.mode, Key: p.key,
			Backend: row.backend, Cached: row.cached, Attempts: row.attempts,
		}
	}
	var text strings.Builder
	if err := table.WriteText(&text); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, SweepResponse{Table: table, Text: text.String(), Routes: routes})
}

// sweepDispatchOrder returns a permutation of pair indices grouped by
// owning shard, then by routing key within the shard, with the original
// request order breaking ties. Feeding the fan-out in this order makes
// same-shard (and, within a shard, same-shape) cells dispatch
// consecutively, so each backend's scratch pool and machine cache stay
// warm for one configuration at a time instead of alternating. The
// permutation only reorders dispatch — result rows are still slotted by
// original index, so the merged table is unaffected.
func sweepDispatchOrder(pairs []sweepPair, owner func(key string) string) []int {
	order := make([]int, len(pairs))
	owners := make([]string, len(pairs))
	for i, p := range pairs {
		order[i] = i
		owners[i] = owner(p.key)
	}
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if owners[ia] != owners[ib] {
			return owners[ia] < owners[ib]
		}
		return pairs[ia].key < pairs[ib].key
	})
	return order
}

// sweepPairs expands and validates the request into its ordered cells.
// Every pair resolves through server.ResolveSimulate up front, so an
// invalid benchmark or mode is a 400 before any fan-out begins.
func (g *Gateway) sweepPairs(req SweepRequest) ([]sweepPair, error) {
	benches := req.Benchmarks
	if len(benches) == 0 {
		benches = workload.Names()
	}
	modes := req.Modes
	if len(modes) == 0 {
		modes = []string{"pac"}
	}
	pairs := make([]sweepPair, 0, len(benches)*len(modes))
	for _, b := range benches {
		for _, m := range modes {
			sr := req.simulateRequest(b, m)
			opts, bench, mode, err := server.ResolveSimulate(g.base, sr)
			if err != nil {
				return nil, err
			}
			body, err := json.Marshal(sr)
			if err != nil {
				return nil, err
			}
			pairs = append(pairs, sweepPair{
				bench: bench,
				mode:  mode.String(),
				key:   server.SimKey(server.OptionsHash(opts), bench, mode),
				body:  body,
			})
		}
	}
	return pairs, nil
}

// sweepRow is the per-cell extract of one simulation result: exactly the
// fields the merged table derives its cells from.
type sweepRow struct {
	Cycles      int64
	RawRequests int64
	MemPackets  int64
	Reissues    int64

	backend  string
	cached   bool
	attempts int
}

// gwJobView is the slice of the backend job view the sweep needs.
type gwJobView struct {
	ID     string          `json:"id"`
	Status string          `json:"status"`
	Error  string          `json:"error"`
	Result json.RawMessage `json:"result"`
}

// runSweepSim executes one cell: dispatch by key, await the job, decode
// the result. A backend dying mid-job loses that job with it, so the
// whole cell is re-dispatched (the ring then routes it to a failover
// candidate) a bounded number of times.
func (g *Gateway) runSweepSim(ctx context.Context, p sweepPair) (sweepRow, error) {
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			g.reg.Counter("pac_gw_sweep_redispatches_total",
				"Sweep cells re-dispatched after losing their backend mid-job.").Inc()
			if err := g.backoff(ctx, attempt-1); err != nil {
				return sweepRow{}, err
			}
		}
		row, err := g.sweepSimOnce(ctx, p)
		if err == nil {
			row.attempts = attempt + 1
			return row, nil
		}
		if ctx.Err() != nil {
			return sweepRow{}, err
		}
		lastErr = err
	}
	return sweepRow{}, lastErr
}

func (g *Gateway) sweepSimOnce(ctx context.Context, p sweepPair) (sweepRow, error) {
	res, err := g.dispatch(ctx, p.key, http.MethodPost, "/v1/simulate",
		"wait=55s", p.body, http.Header{"Content-Type": []string{"application/json"}})
	if err != nil {
		return sweepRow{}, err
	}
	view, err := decodeJobView(res.resp)
	if err != nil {
		g.noteFailure(res.backend)
		return sweepRow{}, err
	}
	// 202: the job outlived the synchronous window; long-poll it on the
	// backend that owns it until it reaches a terminal state.
	for view.Status == "queued" || view.Status == "running" {
		resp, err := g.forward(ctx, res.backend, http.MethodGet,
			"/v1/jobs/"+view.ID, "wait=30s", nil, nil)
		if err != nil {
			g.noteFailure(res.backend)
			return sweepRow{}, err
		}
		view, err = decodeJobView(resp)
		if err != nil {
			return sweepRow{}, err
		}
	}
	if view.Status != "done" {
		return sweepRow{}, fmt.Errorf("job %s on %s ended %s: %s",
			view.ID, res.backend.name, view.Status, view.Error)
	}
	return decodeSweepRow(view.Result, res.backend.name)
}

func decodeJobView(resp *http.Response) (gwJobView, error) {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return gwJobView{}, fmt.Errorf("backend answered %d", resp.StatusCode)
	}
	var view gwJobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return gwJobView{}, fmt.Errorf("decoding job view: %w", err)
	}
	return view, nil
}

// decodeSweepRow extracts the table fields from a terminal simulate
// job's result payload.
func decodeSweepRow(raw json.RawMessage, backendName string) (sweepRow, error) {
	var payload struct {
		Cached bool `json:"cached"`
		Result struct {
			Cycles      int64
			RawRequests int64
			MemPackets  int64
			MSHR        struct{ Reissues int64 }
		} `json:"result"`
	}
	if err := json.Unmarshal(raw, &payload); err != nil {
		return sweepRow{}, fmt.Errorf("decoding result: %w", err)
	}
	return sweepRow{
		Cycles:      payload.Result.Cycles,
		RawRequests: payload.Result.RawRequests,
		MemPackets:  payload.Result.MemPackets,
		Reissues:    payload.Result.MSHR.Reissues,
		backend:     backendName,
		cached:      payload.Cached,
	}, nil
}
