package gateway

import (
	"fmt"
	"strconv"
	"testing"
)

func ringNodes(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return out
}

func TestRingOwnerDeterministic(t *testing.T) {
	nodes := ringNodes(5)
	a := NewRing(0, nodes...)
	b := NewRing(0, nodes...)
	for i := 0; i < 1000; i++ {
		key := "key-" + strconv.Itoa(i)
		oa, ok := a.Owner(key)
		if !ok {
			t.Fatalf("no owner for %s", key)
		}
		ob, _ := b.Owner(key)
		if oa != ob {
			t.Fatalf("owner differs between identical rings: %s vs %s", oa, ob)
		}
		member := false
		for _, n := range nodes {
			if n == oa {
				member = true
			}
		}
		if !member {
			t.Fatalf("owner %s is not a ring member", oa)
		}
	}
}

func TestRingCandidatesDistinctAndOrdered(t *testing.T) {
	r := NewRing(0, ringNodes(4)...)
	for i := 0; i < 100; i++ {
		key := "key-" + strconv.Itoa(i)
		c := r.Candidates(key, 10)
		if len(c) != 4 {
			t.Fatalf("want 4 distinct candidates, got %v", c)
		}
		seen := map[string]bool{}
		for _, n := range c {
			if seen[n] {
				t.Fatalf("duplicate candidate %s in %v", n, c)
			}
			seen[n] = true
		}
		if owner, _ := r.Owner(key); owner != c[0] {
			t.Fatalf("candidates[0]=%s != owner %s", c[0], owner)
		}
	}
}

// TestRingMinimalDisruption pins the consistent-hashing contract the
// fleet relies on: removing one node remaps only that node's keys (the
// rest keep their warm shard), and re-adding it restores the original
// mapping exactly.
func TestRingMinimalDisruption(t *testing.T) {
	nodes := ringNodes(5)
	r := NewRing(0, nodes...)
	const keys = 5000
	before := make(map[string]string, keys)
	for i := 0; i < keys; i++ {
		k := "key-" + strconv.Itoa(i)
		before[k], _ = r.Owner(k)
	}
	victim := nodes[2]
	r.Remove(victim)
	moved := 0
	for k, prev := range before {
		now, ok := r.Owner(k)
		if !ok {
			t.Fatalf("no owner for %s after removal", k)
		}
		if prev == victim {
			moved++
			if now == victim {
				t.Fatalf("key %s still owned by removed node", k)
			}
		} else if now != prev {
			t.Fatalf("key %s moved %s -> %s though its owner stayed in the ring", k, prev, now)
		}
	}
	if moved == 0 {
		t.Fatal("removal moved zero keys; victim owned nothing, test is vacuous")
	}
	r.Add(victim)
	for k, prev := range before {
		if now, _ := r.Owner(k); now != prev {
			t.Fatalf("key %s not restored after re-add: %s != %s", k, now, prev)
		}
	}
}

// TestRingSpreadBound documents and gates the load-balance bound: with
// DefaultReplicas (128) virtual nodes each, the most-loaded of up to 8
// nodes owns no more than 2x the mean share of uniform keys. Measured
// ratios sit around 1.15-1.40; 2x leaves headroom for hash noise while
// still catching a broken point distribution (a ring with 1 replica per
// node routinely exceeds 2x, which is why DefaultReplicas is 128).
func TestRingSpreadBound(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		r := NewRing(0, ringNodes(n)...)
		counts, ratio := r.Spread(20000)
		if len(counts) != n {
			t.Fatalf("%d nodes: only %d received keys: %v", n, len(counts), counts)
		}
		if ratio > 2.0 {
			t.Fatalf("%d nodes: max/mean load ratio %.3f exceeds the documented 2x bound (%v)",
				n, ratio, counts)
		}
		t.Logf("%d nodes, %d replicas: max/mean = %.3f", n, DefaultReplicas, ratio)
	}
}

// FuzzRing fuzzes the ring invariants over arbitrary node-name bytes and
// key sets:
//
//  1. every key maps to a live member node;
//  2. removing one node remaps only that node's keys (minimal
//     disruption), and re-adding it restores the original mapping;
//  3. load spread across the virtual-node replicas stays within a
//     documented generous bound (3x max/mean at 128 replicas — looser
//     than the 2x unit-test gate because fuzz samples fewer keys).
func FuzzRing(f *testing.F) {
	f.Add([]byte("seed"))
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte("backend-a backend-b backend-c some keys here"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			data = []byte{1}
		}
		nNodes := int(data[0])%7 + 2 // 2..8 so removal leaves a live ring
		nodes := make([]string, nNodes)
		for i := range nodes {
			var b byte
			if i+1 < len(data) {
				b = data[i+1]
			}
			// The index prefix guarantees distinct names even when the
			// fuzzer supplies identical bytes.
			nodes[i] = fmt.Sprintf("n%d-%02x", i, b)
		}
		r := NewRing(0, nodes...)
		member := make(map[string]bool, nNodes)
		for _, n := range nodes {
			member[n] = true
		}

		keys := make([]string, 0, 64)
		for i := 0; i < 64; i++ {
			lo := (i * 3) % (len(data) + 1)
			keys = append(keys, fmt.Sprintf("k%d-%x", i, data[lo:min(lo+8, len(data))]))
		}

		before := make(map[string]string, len(keys))
		for _, k := range keys {
			o, ok := r.Owner(k)
			if !ok || !member[o] {
				t.Fatalf("key %q mapped to non-member %q (ok=%v)", k, o, ok)
			}
			before[k] = o
		}

		victim := nodes[int(data[len(data)-1])%nNodes]
		r.Remove(victim)
		for _, k := range keys {
			o, ok := r.Owner(k)
			if !ok {
				t.Fatalf("no owner for %q after removing %q", k, victim)
			}
			if before[k] == victim {
				if o == victim {
					t.Fatalf("key %q still on removed node %q", k, victim)
				}
			} else if o != before[k] {
				t.Fatalf("key %q moved %q -> %q though its owner %q stayed",
					k, before[k], o, before[k])
			}
		}
		r.Add(victim)
		for _, k := range keys {
			if o, _ := r.Owner(k); o != before[k] {
				t.Fatalf("key %q not restored after re-adding %q: %q != %q",
					k, victim, o, before[k])
			}
		}

		if _, ratio := r.Spread(4096); ratio > 3.0 {
			t.Fatalf("max/mean load ratio %.3f exceeds the 3x fuzz bound (%d nodes)", ratio, nNodes)
		}
	})
}
