//go:build race

package gateway

// raceEnabled lets timing-sensitive chaos tests shrink their workloads:
// the race detector slows simulations by an order of magnitude.
const raceEnabled = true
