package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"github.com/pacsim/pac/internal/server"
	"github.com/pacsim/pac/internal/telemetry"
	"github.com/pacsim/pac/internal/wal"
)

// getJSON fetches one URL and decodes the JSON body.
func getJSON(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	out := map[string]any{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("GET %s: decoding body: %v", url, err)
	}
	return resp.StatusCode, out
}

// TestChaosWorkerRestartRecoversOrphans is the fleet-level crash-safety
// acceptance: a WAL-backed worker dies mid-job (listener gone, journal
// torn open with no terminal record), reboots on the same address, and
// replays the job from its journal. The gateway must
//
//  1. eject the corpse via the /readyz probe loop;
//  2. reinstate the rebooted worker once it reports ready;
//  3. reconcile its orphaned jobs — re-dispatching the journaled
//     request through the ring (pac_gw_orphan_redispatch_total rises);
//  4. end with the recovered job finished and its result identical to
//     an uninterrupted run of the same request elsewhere in the fleet.
func TestChaosWorkerRestartRecoversOrphans(t *testing.T) {
	walDir := t.TempDir()
	walPath := filepath.Join(walDir, "jobs.wal")

	// Victim worker on a manual listener so the reboot can reuse the
	// exact address the gateway knows it by.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	victimURL := "http://" + addr

	regA := telemetry.NewRegistry()
	walA, recoveredA, err := wal.Open(wal.Config{Path: walPath, Registry: regA})
	if err != nil {
		t.Fatal(err)
	}
	if len(recoveredA) != 0 {
		t.Fatalf("fresh journal recovered %d jobs", len(recoveredA))
	}
	srvA := server.New(server.Config{
		Options:     quickOpts(),
		Parallel:    2,
		Concurrency: 2,
		QueueDepth:  64,
		NodeID:      "w0",
		Registry:    regA,
		WAL:         walA,
	})
	tsA := &httptest.Server{Listener: ln, Config: &http.Server{Handler: srvA.Handler()}}
	tsA.Start()

	survivor := startBackends(t, 1)[0]
	gw, front := testGateway(t, []string{victimURL, survivor}, func(c *Config) {
		c.FailThreshold = 1
		c.RecoverThreshold = 1
		// The probe deadline is the interval: on a CPU-saturated node
		// (the replayed sim pins the cores) a too-tight deadline keeps
		// the reborn worker ejected until its job already finished,
		// which defeats the orphan window this test is about.
		c.HealthInterval = 100 * time.Millisecond
	})
	waitFor(t, 2*time.Second, "victim probed up", func() bool {
		return metric(t, gw, "pac_gw_backend_up", "backend", victimURL) == 1
	})

	// A long job lands on the victim and gets journaled. It must stay
	// in flight well past the reboot-probe-reconcile latency; the race
	// detector slows the sim ~10x, so shrink it there to keep the
	// absolute runtime inside the waits below.
	accesses := 5_000_000
	if raceEnabled {
		accesses = 1_000_000
	}
	body := fmt.Sprintf(`{"benchmark": "STREAM", "mode": "pac", "accessesPerCore": %d}`, accesses)
	r0, payload := postJSON(t, victimURL+"/v1/simulate", body)
	accepted := map[string]any{}
	if err := json.Unmarshal([]byte(payload), &accepted); err != nil {
		t.Fatalf("decoding accepted job: %v (%s)", err, payload)
	}
	if r0.StatusCode != http.StatusAccepted {
		t.Fatalf("async simulate on victim = %d %v", r0.StatusCode, accepted)
	}
	jobID := accepted["id"].(string)

	// Crash: tear the journal shut (no terminal record can ever be
	// written), then drop the listener. The expired-context drain stands
	// in for the process dying: it aborts the in-flight simulation so
	// the corpse stops burning CPU, while its cancel record — like any
	// real crash — never reaches the already-closed journal.
	if err := walA.Close(); err != nil {
		t.Fatal(err)
	}
	tsA.CloseClientConnections()
	tsA.Close()
	expired, cancel := context.WithDeadline(context.Background(), time.Now())
	cancel()
	srvA.Drain(expired)
	waitFor(t, 5*time.Second, "victim ejection", func() bool {
		return metric(t, gw, "pac_gw_backend_up", "backend", victimURL) == 0
	})

	// Reboot on the same address: the journal recovers the job and the
	// new daemon replays it during boot.
	regB := telemetry.NewRegistry()
	walB, recovered, err := wal.Open(wal.Config{Path: walPath, Registry: regB})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { walB.Close() })
	if len(recovered) != 1 || recovered[0].ID != jobID {
		t.Fatalf("recovered = %+v, want the crashed job %s", recovered, jobID)
	}
	srvB := server.New(server.Config{
		Options:     quickOpts(),
		Parallel:    2,
		Concurrency: 2,
		QueueDepth:  64,
		NodeID:      "w0",
		Registry:    regB,
		WAL:         walB,
		Recovered:   recovered,
	})
	var ln2 net.Listener
	waitFor(t, 5*time.Second, "rebinding the victim address", func() bool {
		ln2, err = net.Listen("tcp", addr)
		return err == nil
	})
	tsB := &httptest.Server{Listener: ln2, Config: &http.Server{Handler: srvB.Handler()}}
	tsB.Start()
	t.Cleanup(tsB.Close)

	// The gateway reinstates the reborn worker and reconciles its
	// orphans through the normal routing path.
	waitFor(t, 10*time.Second, "victim reinstatement", func() bool {
		return metric(t, gw, "pac_gw_backend_up", "backend", victimURL) == 1
	})
	func() {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if metric(t, gw, "pac_gw_orphan_redispatch_total", "backend", victimURL) >= 1 {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		_, jobs := getJSON(t, victimURL+"/v1/jobs")
		t.Fatalf("timed out waiting for orphan redispatch; victim jobs: %v", jobs)
	}()

	// The replayed job finishes under its original ID on the reborn
	// worker...
	var final map[string]any
	waitFor(t, 30*time.Second, "recovered job completion", func() bool {
		code, job := getJSON(t, victimURL+"/v1/jobs/"+jobID)
		if code != http.StatusOK {
			return false
		}
		if s, _ := job["status"].(string); s == "done" {
			final = job
			return true
		} else if s == "failed" || s == "cancelled" {
			t.Fatalf("recovered job ended %v: %v", s, job["error"])
		}
		return false
	})
	if final["recovered"] != true {
		t.Error("replayed job not flagged recovered")
	}

	// ...and its result is identical to an uninterrupted run of the same
	// request on the survivor (modulo SkippedCycles driver accounting).
	r, refPayload := postJSON(t, survivor+"/v1/simulate?wait=60s", body)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("reference run on survivor = %d %s", r.StatusCode, refPayload)
	}
	ref := map[string]any{}
	if err := json.Unmarshal([]byte(refPayload), &ref); err != nil {
		t.Fatal(err)
	}
	got := final["result"].(map[string]any)["result"].(map[string]any)
	want := ref["result"].(map[string]any)["result"].(map[string]any)
	delete(got, "SkippedCycles")
	delete(want, "SkippedCycles")
	if !reflect.DeepEqual(got, want) {
		t.Errorf("recovered result differs from uninterrupted run\n got: %v\nwant: %v", got, want)
	}

	// The fleet is whole again.
	hcode, health := getJSON(t, front.URL+"/healthz")
	if hcode != http.StatusOK || health["status"] != "ok" {
		t.Errorf("fleet healthz after recovery = %d %v", hcode, health)
	}
	if up := metric(t, gw, "pac_gw_backend_up", "backend", survivor); up != 1 {
		t.Errorf("survivor marked down after recovery: %v", up)
	}
}
