package gateway

import (
	"fmt"
	"testing"
)

// TestSweepDispatchOrderGroupsByShard drives the ordering helper with a
// real two-node ring and asserts the shard-contiguity contract: once the
// feed moves off a shard it never returns to it, and cells sharing a key
// inside one shard are adjacent.
func TestSweepDispatchOrderGroupsByShard(t *testing.T) {
	ring := NewRing(64, "node-a", "node-b")
	owner := func(key string) string {
		node, ok := ring.Owner(key)
		if !ok {
			t.Fatalf("ring has no owner for %q", key)
		}
		return node
	}

	// Interleave keys so the request order alternates shards and repeats
	// keys non-adjacently — the worst case the ordering must untangle.
	keys := []string{
		"sweep-key-0", "sweep-key-1", "sweep-key-2", "sweep-key-3",
		"sweep-key-0", "sweep-key-2", "sweep-key-1", "sweep-key-3",
		"sweep-key-4", "sweep-key-0",
	}
	pairs := make([]sweepPair, len(keys))
	for i, k := range keys {
		pairs[i] = sweepPair{bench: fmt.Sprintf("b%d", i), key: k}
	}

	order := sweepDispatchOrder(pairs, owner)
	if len(order) != len(pairs) {
		t.Fatalf("order has %d entries, want %d", len(order), len(pairs))
	}
	seenIdx := make(map[int]bool)
	for _, i := range order {
		if i < 0 || i >= len(pairs) || seenIdx[i] {
			t.Fatalf("order %v is not a permutation of indices", order)
		}
		seenIdx[i] = true
	}

	// Shard contiguity: owners appear in one contiguous run each.
	doneShards := make(map[string]bool)
	prevOwner := ""
	for _, i := range order {
		o := owner(pairs[i].key)
		if o != prevOwner {
			if doneShards[o] {
				t.Fatalf("shard %s appears in two runs: order %v", o, order)
			}
			doneShards[prevOwner] = true
			prevOwner = o
		}
	}

	// Key contiguity within a shard: equal keys are adjacent.
	doneKeys := make(map[string]bool)
	prevKey := ""
	for _, i := range order {
		k := pairs[i].key
		if k != prevKey {
			if doneKeys[k] {
				t.Fatalf("key %s appears in two runs: order %v", k, order)
			}
			doneKeys[prevKey] = true
			prevKey = k
		}
	}

	// Ties (same shard, same key) keep original request order.
	lastByKey := make(map[string]int)
	for _, i := range order {
		k := pairs[i].key
		if prev, ok := lastByKey[k]; ok && i < prev {
			t.Fatalf("same-key cells reordered: index %d after %d in order %v",
				i, prev, order)
		}
		lastByKey[k] = i
	}
}

// TestSweepDispatchOrderEmpty keeps the degenerate cases total.
func TestSweepDispatchOrderEmpty(t *testing.T) {
	if got := sweepDispatchOrder(nil, func(string) string { return "" }); len(got) != 0 {
		t.Fatalf("empty pairs produced order %v", got)
	}
	one := []sweepPair{{key: "k"}}
	if got := sweepDispatchOrder(one, func(string) string { return "n" }); len(got) != 1 || got[0] != 0 {
		t.Fatalf("single pair produced order %v", got)
	}
}
