// Package gateway is the pacd fleet front-end: a stdlib-only reverse
// proxy that consistent-hash-routes simulation and experiment jobs to
// backend pacd nodes by their canonical options hash, health-checks the
// backends, ejects and routes around failing nodes with the daemon's
// backoff/retry discipline, and fans sweep experiments out across the
// fleet with a deterministic table merge.
//
// Routing is the whole point: a pacd node's value is its warm session
// memo, so a request that lands on the wrong node turns a memo hit into
// a full re-simulation. The gateway resolves every simulate request
// through the same server.ResolveSimulate/OptionsHash path the backends
// use, so the shard key is exactly the key the backend's session pool
// will use — identical requests always meet the same warm cache
// (DESIGN.md §10 documents the affinity contract).
package gateway

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"sync"
)

// DefaultReplicas is the virtual-node count per backend. 128 replicas
// keep the expected load imbalance tight: over 100k uniform keys the
// most-loaded of up to 8 nodes stays within ~1.35x of the mean, and the
// ring tests gate a generous 2x bound (TestRingSpreadBound documents the
// measured figures).
const DefaultReplicas = 128

// Ring is a consistent-hash ring over named nodes. Each node owns
// `replicas` pseudo-random points on a uint64 circle; a key is owned by
// the node of the first point clockwise from the key's hash. Adding or
// removing one node therefore remaps only the keys in the arcs that
// node's points own — every other key keeps its owner (the minimal-
// disruption property FuzzRing enforces).
//
// Ring is safe for concurrent use. Membership is the *configured* fleet:
// health-based ejection does not remove nodes from the ring (keys must
// return to their primary owner the moment it recovers); the gateway
// instead skips dead candidates at lookup time via Candidates.
type Ring struct {
	replicas int

	mu     sync.RWMutex
	nodes  map[string]struct{}
	points []ringPoint // sorted by (hash, node)
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing creates a ring with the given virtual-node count per node
// (<= 0 uses DefaultReplicas).
func NewRing(replicas int, nodes ...string) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	r := &Ring{replicas: replicas, nodes: make(map[string]struct{})}
	for _, n := range nodes {
		r.Add(n)
	}
	return r
}

// hashKey maps an arbitrary key onto the circle. SHA-256 keeps the point
// distribution uniform regardless of key shape (hex hashes, URLs, node
// names) without a seed to manage.
func hashKey(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// pointHash derives one virtual-node point.
func pointHash(node string, replica int) uint64 {
	return hashKey(node + "#" + strconv.Itoa(replica))
}

// Add inserts a node (idempotent).
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; ok {
		return
	}
	r.nodes[node] = struct{}{}
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{hash: pointHash(node, i), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
}

// Remove deletes a node (idempotent). Only keys owned by the removed
// node change owner.
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Nodes returns the members sorted by name.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Owner returns the node owning key — the request's primary shard, and
// the affinity target the pac_gw_affinity_* metrics measure against. ok
// is false on an empty ring.
func (r *Ring) Owner(key string) (node string, ok bool) {
	c := r.Candidates(key, 1)
	if len(c) == 0 {
		return "", false
	}
	return c[0], true
}

// Candidates returns up to n distinct nodes in ring order starting at
// the key's owner: the failover sequence for the key. Successive nodes
// are the owners the key would fall to if every earlier candidate left
// the ring, so retrying down this list preserves as much affinity as a
// degraded fleet allows.
func (r *Ring) Candidates(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, dup := seen[p.node]; dup {
			continue
		}
		seen[p.node] = struct{}{}
		out = append(out, p.node)
	}
	return out
}

// Spread measures load balance: it maps `samples` synthetic uniform keys
// and returns the per-node ownership counts plus the max/mean ratio.
// The ring tests document and gate the bound; operators can call it to
// sanity-check a fleet layout.
func (r *Ring) Spread(samples int) (counts map[string]int, maxOverMean float64) {
	counts = make(map[string]int)
	if r.Len() == 0 || samples <= 0 {
		return counts, 0
	}
	for i := 0; i < samples; i++ {
		if n, ok := r.Owner("spread-sample-" + strconv.Itoa(i)); ok {
			counts[n]++
		}
	}
	mean := float64(samples) / float64(r.Len())
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	return counts, float64(max) / mean
}

// String renders a short diagnostic form.
func (r *Ring) String() string {
	return fmt.Sprintf("ring(%d nodes, %d replicas)", r.Len(), r.replicas)
}
