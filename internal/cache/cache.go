// Package cache implements the simulated cache hierarchy in front of the
// coalescer: a private L1 per core and a shared last-level cache (LLC),
// both set-associative with true-LRU replacement and write-back,
// write-allocate policy, matching the paper's Table 1 configuration
// (8-way, 16KB L1, 8MB L2, 64B blocks).
//
// The hierarchy classifies each CPU access and produces the LLC miss
// stream and write-back stream that feed the coalescing network. It is a
// tag-only model: no data is stored, only tags and dirty bits.
package cache

import (
	"fmt"

	"github.com/pacsim/pac/internal/mem"
)

// Config describes one cache level.
type Config struct {
	// Size is the capacity in bytes; must be a multiple of Ways*64.
	Size int
	// Ways is the set associativity.
	Ways int
}

// Cache is a single set-associative, write-back, write-allocate cache.
type Cache struct {
	sets   int
	ways   int
	tags   []uint64 // sets*ways entries; tag = block number
	valid  []bool
	dirty  []bool
	lru    []uint32 // per-line stamp; larger = more recent
	stamps []uint32 // per-set clock
	// Stats.
	Hits, Misses, WriteBacks int64
}

// New constructs a cache. It panics on a degenerate geometry, since that
// is a programming error in the simulator configuration.
func New(cfg Config) *Cache {
	if cfg.Ways <= 0 || cfg.Size <= 0 {
		panic(fmt.Sprintf("cache: bad config %+v", cfg))
	}
	lines := cfg.Size / mem.BlockSize
	if lines%cfg.Ways != 0 || lines/cfg.Ways == 0 {
		panic(fmt.Sprintf("cache: size %d not divisible into %d ways", cfg.Size, cfg.Ways))
	}
	sets := lines / cfg.Ways
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a power of two", sets))
	}
	n := sets * cfg.Ways
	return &Cache{
		sets:   sets,
		ways:   cfg.Ways,
		tags:   make([]uint64, n),
		valid:  make([]bool, n),
		dirty:  make([]bool, n),
		lru:    make([]uint32, n),
		stamps: make([]uint32, sets),
	}
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Eviction describes a dirty line displaced by an allocation.
type Eviction struct {
	// Addr is the block-aligned address of the displaced line.
	Addr uint64
	// Dirty reports whether the line must be written back.
	Dirty bool
	// Valid reports whether any line was displaced at all.
	Valid bool
}

// Access performs a read or write of the block containing addr. On a miss
// the block is allocated (write-allocate) and the displaced line, if any,
// is returned. fetch=false allocates without counting a miss-fill (used
// for full-line write-backs arriving from an upper level, which need no
// memory read).
func (c *Cache) Access(addr uint64, write bool) (hit bool, ev Eviction) {
	blk := mem.BlockNumber(addr)
	set := int(blk % uint64(c.sets))
	base := set * c.ways
	c.stamps[set]++
	stamp := c.stamps[set]

	// Lookup.
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == blk {
			c.Hits++
			c.lru[i] = stamp
			if write {
				c.dirty[i] = true
			}
			return true, Eviction{}
		}
	}
	c.Misses++

	// Allocate: prefer an invalid way, else the LRU way.
	victim := base
	for w := 0; w < c.ways; w++ {
		i := base + w
		if !c.valid[i] {
			victim = i
			goto fill
		}
		if c.lru[i] < c.lru[victim] {
			victim = i
		}
	}
	if c.valid[victim] {
		ev = Eviction{
			Addr:  c.tags[victim] << mem.BlockShift,
			Dirty: c.dirty[victim],
			Valid: true,
		}
		if ev.Dirty {
			c.WriteBacks++
		}
	}
fill:
	c.tags[victim] = blk
	c.valid[victim] = true
	c.dirty[victim] = write
	c.lru[victim] = stamp
	return false, ev
}

// Contains reports whether the block holding addr is currently resident.
// It does not perturb LRU state; intended for tests and invariant checks.
func (c *Cache) Contains(addr uint64) bool {
	blk := mem.BlockNumber(addr)
	set := int(blk % uint64(c.sets))
	for w := 0; w < c.ways; w++ {
		i := set*c.ways + w
		if c.valid[i] && c.tags[i] == blk {
			return true
		}
	}
	return false
}

// Flush invalidates every line and returns the number of dirty lines that
// would have been written back.
func (c *Cache) Flush() (dirty int) {
	for i := range c.valid {
		if c.valid[i] && c.dirty[i] {
			dirty++
		}
		c.valid[i] = false
		c.dirty[i] = false
	}
	return dirty
}
