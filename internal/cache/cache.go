// Package cache implements the simulated cache hierarchy in front of the
// coalescer: a private L1 per core and a shared last-level cache (LLC),
// both set-associative with true-LRU replacement and write-back,
// write-allocate policy, matching the paper's Table 1 configuration
// (8-way, 16KB L1, 8MB L2, 64B blocks).
//
// The hierarchy classifies each CPU access and produces the LLC miss
// stream and write-back stream that feed the coalescing network. It is a
// tag-only model: no data is stored, only tags and dirty bits.
package cache

import (
	"fmt"

	"github.com/pacsim/pac/internal/mem"
)

// Config describes one cache level.
type Config struct {
	// Size is the capacity in bytes; must be a multiple of Ways*64.
	Size int
	// Ways is the set associativity.
	Ways int
}

// Each cache line's tag state packs into one uint64 tag word —
// blockNumber<<2 | valid<<1 | dirty — and the ways of a set are kept in
// MRU order (most recently used first). Ordering the array by recency
// makes explicit LRU stamps redundant: the victim is the last valid way.
// The choice is byte-identical to stamp-based true LRU, because stamps
// were unique within a set (one access, one stamp), so "smallest stamp"
// and "least recently touched" name the same line. An 8-way set is then
// 64 bytes — one host cache line — and the common hit-at-MRU case exits
// after a single compare.
const (
	tagValid = 1 << 1
	tagDirty = 1 << 0
)

// Cache is a single set-associative, write-back, write-allocate cache.
type Cache struct {
	sets    int
	ways    int
	setMask uint64   // sets-1; the set count is a power of two
	tags    []uint64 // sets*ways tag words, set-major, MRU-first per set
	// Stats.
	Hits, Misses, WriteBacks int64
}

// New constructs a cache. It panics on a degenerate geometry, since that
// is a programming error in the simulator configuration.
func New(cfg Config) *Cache {
	if cfg.Ways <= 0 || cfg.Size <= 0 {
		panic(fmt.Sprintf("cache: bad config %+v", cfg))
	}
	lines := cfg.Size / mem.BlockSize
	if lines%cfg.Ways != 0 || lines/cfg.Ways == 0 {
		panic(fmt.Sprintf("cache: size %d not divisible into %d ways", cfg.Size, cfg.Ways))
	}
	sets := lines / cfg.Ways
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a power of two", sets))
	}
	return &Cache{
		sets:    sets,
		ways:    cfg.Ways,
		setMask: uint64(sets - 1),
		tags:    make([]uint64, sets*cfg.Ways),
	}
}

// Reset restores the cache to its just-constructed state — every line
// invalid, every counter zero — keeping the tag storage.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
	}
	c.Hits, c.Misses, c.WriteBacks = 0, 0, 0
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Eviction describes a dirty line displaced by an allocation.
type Eviction struct {
	// Addr is the block-aligned address of the displaced line.
	Addr uint64
	// Dirty reports whether the line must be written back.
	Dirty bool
	// Valid reports whether any line was displaced at all.
	Valid bool
}

// Access performs a read or write of the block containing addr. On a miss
// the block is allocated (write-allocate) and the displaced line, if any,
// is returned. fetch=false allocates without counting a miss-fill (used
// for full-line write-backs arriving from an upper level, which need no
// memory read).
func (c *Cache) Access(addr uint64, write bool) (hit bool, ev Eviction) {
	blk := mem.BlockNumber(addr)
	base := int(blk&c.setMask) * c.ways
	ws := c.tags[base : base+c.ways] // one slice header: bounds-checked once
	key := blk<<2 | tagValid

	// Lookup: compare ignoring the dirty bit.
	for w := range ws {
		if ws[w]&^uint64(tagDirty) == key {
			c.Hits++
			tw := ws[w]
			if write {
				tw |= tagDirty
			}
			copy(ws[1:w+1], ws[:w]) // move to front
			ws[0] = tw
			return true, Eviction{}
		}
	}
	c.Misses++

	// Allocate: prefer an invalid way, else the LRU (last) way. Valid
	// ways form a prefix — fills grow the prefix and hits permute it —
	// so the first invalid way is where the prefix ends.
	w := c.ways - 1
	for i := range ws {
		if ws[i]&tagValid == 0 {
			w = i
			break
		}
	}
	if tw := ws[w]; tw&tagValid != 0 {
		ev = Eviction{
			Addr:  tw >> 2 << mem.BlockShift,
			Dirty: tw&tagDirty != 0,
			Valid: true,
		}
		if ev.Dirty {
			c.WriteBacks++
		}
	}
	copy(ws[1:w+1], ws[:w])
	if write {
		key |= tagDirty
	}
	ws[0] = key
	return false, ev
}

// Contains reports whether the block holding addr is currently resident.
// It does not perturb LRU state; intended for tests and invariant checks.
func (c *Cache) Contains(addr uint64) bool {
	blk := mem.BlockNumber(addr)
	base := int(blk&c.setMask) * c.ways
	ws := c.tags[base : base+c.ways]
	key := blk<<2 | tagValid
	for w := range ws {
		if ws[w]&^uint64(tagDirty) == key {
			return true
		}
	}
	return false
}

// Flush invalidates every line and returns the number of dirty lines that
// would have been written back.
func (c *Cache) Flush() (dirty int) {
	for i, tw := range c.tags {
		if tw&tagValid != 0 && tw&tagDirty != 0 {
			dirty++
		}
		c.tags[i] = 0
	}
	return dirty
}
