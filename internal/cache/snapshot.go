package cache

import "fmt"

// CacheState is the serializable mid-run state of one Cache: the raw tag
// words (which encode residency, dirty bits and the MRU ordering of every
// set) plus the counters. Geometry is not part of the state — a restore
// target must already be built with the same Config.
type CacheState struct {
	Tags                     []uint64
	Hits, Misses, WriteBacks int64
}

// SaveState copies the cache's mutable state. The returned state shares
// nothing with the cache, so it stays valid while the run continues.
func (c *Cache) SaveState() CacheState {
	return CacheState{
		Tags:       append([]uint64(nil), c.tags...),
		Hits:       c.Hits,
		Misses:     c.Misses,
		WriteBacks: c.WriteBacks,
	}
}

// RestoreState overwrites the cache's mutable state from a snapshot taken
// on an identically configured cache.
func (c *Cache) RestoreState(st CacheState) error {
	if len(st.Tags) != len(c.tags) {
		return fmt.Errorf("cache: restoring %d tag words into a %d-line cache", len(st.Tags), len(c.tags))
	}
	copy(c.tags, st.Tags)
	c.Hits, c.Misses, c.WriteBacks = st.Hits, st.Misses, st.WriteBacks
	return nil
}

// HierarchyState is the serializable mid-run state of the whole L1+LLC
// stack. Pending holds the block numbers with in-flight memory fills;
// it is a membership set, so key order is irrelevant (the checkpoint
// layer sorts it for canonical encoding).
type HierarchyState struct {
	L1      []CacheState
	LLC     CacheState
	Pending []uint64

	Accesses    int64
	L1Hits      int64
	LLCHits     int64
	LLCMisses   int64
	PendingHits int64
	Uncached    int64
	WriteBacks  int64
}

// SaveState copies the hierarchy's mutable state. The write-back buffer
// is transient (consumed before the next access) and is not part of it.
func (h *Hierarchy) SaveState() HierarchyState {
	st := HierarchyState{
		L1:          make([]CacheState, len(h.l1)),
		LLC:         h.llc.SaveState(),
		Pending:     h.pending.AppendKeys(nil),
		Accesses:    h.Accesses,
		L1Hits:      h.L1Hits,
		LLCHits:     h.LLCHits,
		LLCMisses:   h.LLCMisses,
		PendingHits: h.PendingHits,
		Uncached:    h.Uncached,
		WriteBacks:  h.WriteBacks,
	}
	for i, c := range h.l1 {
		st.L1[i] = c.SaveState()
	}
	return st
}

// RestoreState overwrites the hierarchy's mutable state from a snapshot
// taken on an identically configured hierarchy.
func (h *Hierarchy) RestoreState(st HierarchyState) error {
	if len(st.L1) != len(h.l1) {
		return fmt.Errorf("cache: restoring %d L1 states into %d-core hierarchy", len(st.L1), len(h.l1))
	}
	for i, c := range h.l1 {
		if err := c.RestoreState(st.L1[i]); err != nil {
			return err
		}
	}
	if err := h.llc.RestoreState(st.LLC); err != nil {
		return err
	}
	h.pending.Clear()
	for _, blk := range st.Pending {
		h.pending.Add(blk)
	}
	h.wbBuf = h.wbBuf[:0]
	h.Accesses, h.L1Hits, h.LLCHits, h.LLCMisses = st.Accesses, st.L1Hits, st.LLCHits, st.LLCMisses
	h.PendingHits, h.Uncached, h.WriteBacks = st.PendingHits, st.Uncached, st.WriteBacks
	return nil
}
