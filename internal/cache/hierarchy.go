package cache

import (
	"github.com/pacsim/pac/internal/arena"
	"github.com/pacsim/pac/internal/mem"
	"github.com/pacsim/pac/internal/telemetry"
)

// HierarchyConfig describes the two-level hierarchy of the simulated
// machine (paper Table 1: 8-way, 16K L1 per core, 8MB shared L2/LLC).
type HierarchyConfig struct {
	// Cores is the number of private L1 caches.
	Cores int
	// L1 and LLC describe the two levels.
	L1, LLC Config
}

// DefaultHierarchyConfig returns the paper's Table 1 cache configuration
// for the given core count.
func DefaultHierarchyConfig(cores int) HierarchyConfig {
	return HierarchyConfig{
		Cores: cores,
		L1:    Config{Size: 16 << 10, Ways: 8},
		LLC:   Config{Size: 8 << 20, Ways: 8},
	}
}

// Hierarchy is the simulated L1+LLC stack shared by all cores. It converts
// raw CPU accesses into the LLC miss stream and write-back stream consumed
// by the coalescing layer.
type Hierarchy struct {
	l1  []*Cache
	llc *Cache
	// pending tracks LLC blocks whose memory fill is still in flight.
	// An access from another core that reaches the LLC while its block
	// is pending must still emit a memory request — downstream MSHR
	// merging (or PAC coalescing) is what absorbs it, exactly the
	// behaviour the paper's MSHR-based DMC baseline relies on.
	pending *arena.U64Set
	// wbBuf backs Outcome.WriteBacks; it is reused by the next Access or
	// Prefetch call, so callers must consume (or copy) the slice before
	// driving the hierarchy again.
	wbBuf []mem.Request
	// Stats.
	Accesses    int64 // data accesses observed (fences excluded)
	L1Hits      int64
	LLCHits     int64
	LLCMisses   int64
	PendingHits int64 // LLC hits on in-flight blocks (emit requests)
	Uncached    int64 // atomics routed around the hierarchy
	WriteBacks  int64 // dirty LLC evictions sent to memory
}

// Record emits the hierarchy's aggregate counters into the telemetry
// hooks as one KindCacheStats event labelled with the workload name. The
// simulation driver calls it once per finished run; a nil hooks drops
// the event.
func (h *Hierarchy) Record(hooks *telemetry.Hooks, bench string) {
	hooks.Emit(telemetry.Event{
		Kind:      telemetry.KindCacheStats,
		Bench:     bench,
		Accesses:  h.Accesses,
		LLCMisses: h.LLCMisses,
	})
}

// NewHierarchy builds the hierarchy.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	if cfg.Cores <= 0 {
		panic("cache: hierarchy needs at least one core")
	}
	h := &Hierarchy{llc: New(cfg.LLC), pending: arena.NewU64Set(0)}
	for i := 0; i < cfg.Cores; i++ {
		h.l1 = append(h.l1, New(cfg.L1))
	}
	return h
}

// Reset restores the hierarchy to its just-constructed state — cold
// caches, empty pending-fill table, zeroed counters — keeping every
// backing array (tags, table storage, write-back buffer).
func (h *Hierarchy) Reset() {
	for _, c := range h.l1 {
		c.Reset()
	}
	h.llc.Reset()
	h.pending.Clear()
	h.wbBuf = h.wbBuf[:0]
	h.Accesses, h.L1Hits, h.LLCHits, h.LLCMisses = 0, 0, 0, 0
	h.PendingHits, h.Uncached, h.WriteBacks = 0, 0, 0
}

// UseScratch installs a recycled pending-fill set (cleared for use), so a
// fresh hierarchy can reuse a previous run's table instead of growing its
// own. Must be called before the first access.
func (h *Hierarchy) UseScratch(pending *arena.U64Set) {
	if pending != nil {
		pending.Clear()
		h.pending = pending
	}
}

// TakeScratch surrenders the pending set for recycling; the hierarchy
// must not be used afterwards.
func (h *Hierarchy) TakeScratch() *arena.U64Set {
	s := h.pending
	h.pending = nil
	return s
}

// Prefetch installs the block containing addr in the LLC as an in-flight
// fill, unless it is already resident or pending. It returns the memory
// request to dispatch (marked Prefetch) and any dirty eviction it caused;
// the wbs slice is reused by the next Access or Prefetch call.
func (h *Hierarchy) Prefetch(addr uint64, core, proc int, cycle int64, ids *uint64) (miss mem.Request, wbs []mem.Request, ok bool) {
	blk := mem.BlockNumber(addr)
	if h.pending.Contains(blk) || h.llc.Contains(addr) {
		return mem.Request{}, nil, false
	}
	h.wbBuf = h.wbBuf[:0]
	if _, ev := h.llc.Access(addr, false); ev.Valid && ev.Dirty {
		h.WriteBacks++
		h.wbBuf = append(h.wbBuf, mem.Request{
			ID: mint(ids), Addr: ev.Addr, Size: mem.BlockSize,
			Op: mem.OpStore, Core: core, Proc: proc, Issue: cycle,
		})
	}
	wbs = h.wbBuf
	if len(wbs) == 0 {
		wbs = nil
	}
	h.pending.Add(blk)
	return mem.Request{
		ID: mint(ids), Addr: mem.BlockAlign(addr), Size: mem.BlockSize,
		Op: mem.OpLoad, Core: core, Proc: proc, Issue: cycle, Prefetch: true,
	}, wbs, true
}

// FillDone signals that the memory fill for the block with the given
// block number completed; subsequent LLC hits on it are plain hits. It is
// idempotent.
func (h *Hierarchy) FillDone(blockNumber uint64) {
	h.pending.Remove(blockNumber)
}

// PendingFills returns the number of blocks with in-flight fills.
func (h *Hierarchy) PendingFills() int { return h.pending.Len() }

// mint increments the shared ID counter and returns the fresh ID.
func mint(ids *uint64) uint64 { *ids++; return *ids }

// L1 returns core i's private cache (for tests and stats).
func (h *Hierarchy) L1(i int) *Cache { return h.l1[i] }

// LLC returns the shared last-level cache.
func (h *Hierarchy) LLC() *Cache { return h.llc }

// Outcome reports what one CPU access did to the hierarchy.
type Outcome struct {
	// Level is 1 for an L1 hit, 2 for an LLC hit, 0 for an LLC miss
	// or uncached access.
	Level int
	// Miss, when Valid, is the block-granular request that must go to
	// memory: an LLC load/store miss, or the access itself for
	// atomics (uncached).
	Miss mem.Request
	// MissValid reports whether Miss is populated.
	MissValid bool
	// WriteBacks are dirty LLC evictions (block-granular stores) that
	// must also go to memory. The slice is reused by the hierarchy's
	// next Access or Prefetch call; consume it before driving it again.
	WriteBacks []mem.Request
}

// Access runs one CPU data access (1..64B, load/store/atomic) through the
// hierarchy. Fences must be handled by the caller; passing one panics.
// The ids counter mints unique request IDs for generated memory traffic
// (incremented in place: passing a pointer instead of a closure keeps the
// hot path free of per-call closure allocations).
func (h *Hierarchy) Access(core int, addr uint64, size uint32, op mem.Op, proc int, cycle int64, ids *uint64) Outcome {
	var out Outcome
	h.AccessInto(&out, core, addr, op, proc, cycle, ids)
	return out
}

// AccessInto is Access writing its result into out, so the per-access
// driver loop reuses one Outcome instead of copying the ~100-byte struct
// through every return. out is fully overwritten.
func (h *Hierarchy) AccessInto(out *Outcome, core int, addr uint64, op mem.Op, proc int, cycle int64, ids *uint64) {
	if op == mem.OpFence {
		panic("cache: fence passed to Hierarchy.Access")
	}
	h.Accesses++
	*out = Outcome{}

	// Atomics bypass the hierarchy entirely: the paper routes them
	// directly to the memory controller to preserve atomicity.
	if op == mem.OpAtomic {
		h.Uncached++
		out.MissValid = true
		out.Miss = mem.Request{
			ID: mint(ids), Addr: mem.BlockAlign(addr), Size: mem.BlockSize,
			Op: mem.OpAtomic, Core: core, Proc: proc, Issue: cycle,
		}
		return
	}

	write := op == mem.OpStore
	l1 := h.l1[core]
	if hit, ev := l1.Access(addr, write); hit {
		h.L1Hits++
		out.Level = 1
		return
	} else if ev.Valid && ev.Dirty {
		// Dirty L1 victim is installed in the LLC. A full-line
		// write needs no memory fetch; but if the LLC displaces a
		// dirty line of its own, that one goes to memory.
		if _, llcEv := h.llc.Access(ev.Addr, true); llcEv.Valid && llcEv.Dirty {
			h.WriteBacks++
			h.wbBuf = append(h.wbBuf[:0], mem.Request{
				ID: mint(ids), Addr: llcEv.Addr, Size: mem.BlockSize,
				Op: mem.OpStore, Core: core, Proc: proc, Issue: cycle,
			})
			h.fill(out, core, addr, proc, cycle, ids, h.wbBuf)
			return
		}
	}
	h.fill(out, core, addr, proc, cycle, ids, h.wbBuf[:0])
}

// fill services an L1 miss from the LLC, recording an LLC miss request
// when the block is absent there too.
func (h *Hierarchy) fill(out *Outcome, core int, addr uint64, proc int, cycle int64, ids *uint64, wbs []mem.Request) {
	hit, ev := h.llc.Access(addr, false) // L1 owns the dirty bit until eviction
	if ev.Valid && ev.Dirty {
		h.WriteBacks++
		wbs = append(wbs, mem.Request{
			ID: mint(ids), Addr: ev.Addr, Size: mem.BlockSize,
			Op: mem.OpStore, Core: core, Proc: proc, Issue: cycle,
		})
	}
	h.wbBuf = wbs[:0] // retain any growth for the next access
	if len(wbs) == 0 {
		wbs = nil
	}
	out.WriteBacks = wbs
	blk := mem.BlockNumber(addr)
	// Write-allocate: a store miss fetches its line with a READ; the
	// store itself reaches memory later as a write-back when the dirty
	// line is evicted. The ST requests of the paper's Figure 5 example
	// correspond to the write-back stream here. Fills therefore always
	// carry OpLoad, which also lets them coalesce with prefetches.
	op := mem.OpLoad
	if hit {
		if !h.pending.Contains(blk) {
			h.LLCHits++
			out.Level = 2
			return
		}
		// The block's fill is still in flight: this access must emit
		// its own request, to be merged downstream.
		h.PendingHits++
	} else {
		h.LLCMisses++
		h.pending.Add(blk)
	}
	out.MissValid = true
	out.Miss = mem.Request{
		ID: mint(ids), Addr: mem.BlockAlign(addr), Size: mem.BlockSize,
		Op: op, Core: core, Proc: proc, Issue: cycle,
	}
}
