package cache

import (
	"testing"
	"testing/quick"

	"github.com/pacsim/pac/internal/mem"
)

func tiny() *Cache { return New(Config{Size: 1024, Ways: 2}) } // 8 sets x 2 ways

func TestNewPanicsOnBadGeometry(t *testing.T) {
	cases := []Config{
		{Size: 0, Ways: 8},
		{Size: 1024, Ways: 0},
		{Size: 100, Ways: 3},
		{Size: 3 * 64 * 2, Ways: 2}, // 3 sets: not a power of two
	}
	for _, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) should panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestGeometry(t *testing.T) {
	c := tiny()
	if c.Sets() != 8 || c.Ways() != 2 {
		t.Fatalf("geometry = %dx%d, want 8x2", c.Sets(), c.Ways())
	}
}

func TestHitAfterMiss(t *testing.T) {
	c := tiny()
	if hit, _ := c.Access(0x1000, false); hit {
		t.Fatal("cold cache should miss")
	}
	if hit, _ := c.Access(0x1000, false); !hit {
		t.Fatal("second access should hit")
	}
	if hit, _ := c.Access(0x103f, false); !hit {
		t.Fatal("same-block access should hit")
	}
	if c.Hits != 2 || c.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 2/1", c.Hits, c.Misses)
	}
}

func TestLRUEviction(t *testing.T) {
	c := tiny()                                               // 8 sets, 2 ways; blocks 64B apart in same set are 8*64=512B apart
	a, b, d := uint64(0x0000), uint64(0x0200), uint64(0x0400) // same set
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false)          // a is now MRU
	_, ev := c.Access(d, false) // evicts b (LRU)
	if !ev.Valid || ev.Addr != b {
		t.Fatalf("eviction = %+v, want clean eviction of 0x%x", ev, b)
	}
	if ev.Dirty {
		t.Fatal("clean line reported dirty")
	}
	if !c.Contains(a) || c.Contains(b) || !c.Contains(d) {
		t.Fatal("wrong residency after eviction")
	}
}

func TestDirtyEvictionWriteBack(t *testing.T) {
	c := tiny()
	a, b, d := uint64(0x0000), uint64(0x0200), uint64(0x0400)
	c.Access(a, true) // dirty
	c.Access(b, false)
	c.Access(b, false)
	_, ev := c.Access(d, false) // a is LRU and dirty
	if !ev.Valid || !ev.Dirty || ev.Addr != a {
		t.Fatalf("eviction = %+v, want dirty eviction of 0x%x", ev, a)
	}
	if c.WriteBacks != 1 {
		t.Fatalf("WriteBacks = %d, want 1", c.WriteBacks)
	}
}

func TestWriteMarksDirtyOnHit(t *testing.T) {
	c := tiny()
	a, b, d := uint64(0x0000), uint64(0x0200), uint64(0x0400)
	c.Access(a, false) // clean fill
	c.Access(a, true)  // dirty it via hit
	c.Access(b, false)
	c.Access(b, false)
	if _, ev := c.Access(d, false); !ev.Dirty {
		t.Fatal("write hit did not mark line dirty")
	}
}

func TestFlush(t *testing.T) {
	c := tiny()
	c.Access(0x0, true)
	c.Access(0x40, false)
	if dirty := c.Flush(); dirty != 1 {
		t.Fatalf("Flush dirty = %d, want 1", dirty)
	}
	if c.Contains(0x0) || c.Contains(0x40) {
		t.Fatal("lines survive Flush")
	}
}

// Property: a block just accessed is always resident immediately after.
func TestAccessedBlockResident(t *testing.T) {
	c := New(Config{Size: 4096, Ways: 4})
	f := func(addr uint64, write bool) bool {
		addr &= mem.PhysAddrMask
		c.Access(addr, write)
		return c.Contains(addr)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: hits+misses equals total accesses.
func TestHitMissAccounting(t *testing.T) {
	c := New(Config{Size: 2048, Ways: 2})
	f := func(addrs []uint64) bool {
		before := c.Hits + c.Misses
		for _, a := range addrs {
			c.Access(a&mem.PhysAddrMask, a&1 == 1)
		}
		return c.Hits+c.Misses == before+int64(len(addrs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWorkingSetSmallerThanCacheAlwaysHitsAfterWarmup(t *testing.T) {
	c := New(Config{Size: 16 << 10, Ways: 8})
	// 128 distinct blocks = 8KB < 16KB capacity, fits regardless of mapping.
	for pass := 0; pass < 3; pass++ {
		for i := uint64(0); i < 128; i++ {
			c.Access(i*64, false)
		}
	}
	if c.Misses != 128 {
		t.Fatalf("misses = %d, want 128 (cold only)", c.Misses)
	}
}

// --- Hierarchy tests ---

func idGen() *uint64 { return new(uint64) }

func testHierarchy(cores int) *Hierarchy {
	return NewHierarchy(HierarchyConfig{
		Cores: cores,
		L1:    Config{Size: 1 << 10, Ways: 2},
		LLC:   Config{Size: 8 << 10, Ways: 4},
	})
}

func TestHierarchyMissPath(t *testing.T) {
	h := testHierarchy(2)
	ids := idGen()
	out := h.Access(0, 0x5000, 8, mem.OpLoad, 0, 100, ids)
	if !out.MissValid {
		t.Fatal("cold access should reach memory")
	}
	m := out.Miss
	if m.Addr != 0x5000 || m.Size != mem.BlockSize || m.Op != mem.OpLoad || m.Core != 0 || m.Issue != 100 {
		t.Fatalf("bad miss request: %+v", m)
	}
	// Same block again: L1 hit.
	out = h.Access(0, 0x5008, 8, mem.OpLoad, 0, 101, ids)
	if out.Level != 1 || out.MissValid {
		t.Fatalf("expected L1 hit, got %+v", out)
	}
	// Other core, same block, while the fill is still in flight: the
	// access must emit a mergeable request (pending hit).
	out = h.Access(1, 0x5000, 8, mem.OpLoad, 0, 102, ids)
	if !out.MissValid {
		t.Fatalf("expected pending-hit request for core 1, got %+v", out)
	}
	if h.PendingHits != 1 {
		t.Fatalf("PendingHits = %d, want 1", h.PendingHits)
	}
	// After the fill completes, accesses to the block are plain hits
	// (L1 here, since the pending hit installed the line there too).
	h.FillDone(mem.BlockNumber(0x5000))
	out = h.Access(1, 0x5010, 8, mem.OpLoad, 0, 103, ids)
	if out.MissValid {
		t.Fatalf("expected hit for core 1 after FillDone, got %+v", out)
	}
}

func TestPendingFillLifecycle(t *testing.T) {
	h := testHierarchy(2)
	ids := idGen()
	h.Access(0, 0x5000, 8, mem.OpLoad, 0, 0, ids)
	if h.PendingFills() != 1 {
		t.Fatalf("PendingFills = %d, want 1", h.PendingFills())
	}
	h.FillDone(mem.BlockNumber(0x5000))
	h.FillDone(mem.BlockNumber(0x5000)) // idempotent
	if h.PendingFills() != 0 {
		t.Fatalf("PendingFills = %d, want 0", h.PendingFills())
	}
}

func TestHierarchyStoreMissFetchesWithLoad(t *testing.T) {
	// Write-allocate: a store miss fetches its line with a read; the
	// data reaches memory later as a write-back.
	h := testHierarchy(1)
	out := h.Access(0, 0x9000, 8, mem.OpStore, 0, 0, idGen())
	if !out.MissValid || out.Miss.Op != mem.OpLoad {
		t.Fatalf("store miss should fetch with a load, got %+v", out)
	}
}

func TestHierarchyAtomicBypass(t *testing.T) {
	h := testHierarchy(1)
	ids := idGen()
	for i := 0; i < 2; i++ {
		out := h.Access(0, 0x7008, 8, mem.OpAtomic, 0, 0, ids)
		if !out.MissValid || out.Miss.Op != mem.OpAtomic {
			t.Fatalf("atomic must always go to memory, got %+v", out)
		}
		if out.Miss.Addr != 0x7000 {
			t.Fatalf("atomic request not block aligned: 0x%x", out.Miss.Addr)
		}
	}
	if h.Uncached != 2 {
		t.Fatalf("Uncached = %d, want 2", h.Uncached)
	}
	// Atomics must not have allocated cache lines.
	if h.L1(0).Contains(0x7000) || h.LLC().Contains(0x7000) {
		t.Fatal("atomic access polluted the cache")
	}
}

func TestHierarchyFencePanics(t *testing.T) {
	h := testHierarchy(1)
	defer func() {
		if recover() == nil {
			t.Error("fence through Access should panic")
		}
	}()
	h.Access(0, 0, 0, mem.OpFence, 0, 0, idGen())
}

func TestHierarchyWriteBackEmerges(t *testing.T) {
	h := testHierarchy(1)
	ids := idGen()
	// Dirty many distinct blocks mapping across the whole LLC until dirty
	// evictions reach memory.
	var wbs int
	for i := uint64(0); i < 4096; i++ {
		out := h.Access(0, i*64, 8, mem.OpStore, 0, int64(i), ids)
		for _, wb := range out.WriteBacks {
			wbs++
			if wb.Op != mem.OpStore || wb.Size != mem.BlockSize {
				t.Fatalf("bad write-back: %+v", wb)
			}
		}
	}
	if wbs == 0 {
		t.Fatal("no write-backs emerged from dirty working set larger than LLC")
	}
	if h.WriteBacks != int64(wbs) {
		t.Fatalf("WriteBacks counter %d != emitted %d", h.WriteBacks, wbs)
	}
}

func TestHierarchyStatsConsistency(t *testing.T) {
	h := testHierarchy(2)
	ids := idGen()
	const n = 10000
	r := uint64(12345)
	for i := 0; i < n; i++ {
		r = r*6364136223846793005 + 1442695040888963407
		addr := (r >> 16) % (64 << 10)
		op := mem.OpLoad
		if r&3 == 0 {
			op = mem.OpStore
		}
		h.Access(int(r%2), addr, 8, op, 0, int64(i), ids)
	}
	if h.Accesses != n {
		t.Fatalf("Accesses = %d, want %d", h.Accesses, n)
	}
	if h.L1Hits+h.LLCHits+h.LLCMisses+h.PendingHits != n {
		t.Fatalf("hit/miss accounting broken: %d+%d+%d+%d != %d",
			h.L1Hits, h.LLCHits, h.LLCMisses, h.PendingHits, n)
	}
}

func TestHierarchyPanicsWithoutCores(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHierarchy with 0 cores should panic")
		}
	}()
	NewHierarchy(HierarchyConfig{Cores: 0, L1: Config{Size: 1024, Ways: 2}, LLC: Config{Size: 1024, Ways: 2}})
}

func TestDefaultHierarchyConfig(t *testing.T) {
	cfg := DefaultHierarchyConfig(8)
	if cfg.Cores != 8 || cfg.L1.Size != 16<<10 || cfg.LLC.Size != 8<<20 || cfg.L1.Ways != 8 {
		t.Fatalf("unexpected default config: %+v", cfg)
	}
	// Must construct without panicking.
	NewHierarchy(cfg)
}
