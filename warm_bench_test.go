package pac

// BenchmarkWarmMixed measures what the shape-keyed machine cache buys on
// the worst schedule for its single-entry predecessor: K distinct
// configurations (shapes) issued strictly round-robin, so consecutive
// runs never repeat a shape. The "single" sub-benchmark pins the cache
// to one entry — every run rebuilds its machine from the arena, exactly
// the old behaviour — while "lru" holds all K shapes parked, so every
// run checks out a warm machine. scripts/bench_warm.sh runs both,
// records the ratio in BENCH_warm.json, and gates it at 1.30×.
//
// PAC_WARM_SHAPES overrides the shape count and PAC_WARM_MIX the
// benchmark cycle (comma-separated), so the script's -shapes/-mix flags
// reach the measurement without a recompile.

import (
	"os"
	"strconv"
	"strings"
	"testing"

	"github.com/pacsim/pac/internal/sim"
)

// warmMixedConfigs builds the K-shape round-robin schedule: benchmarks
// cycle through the mix while the trace length steps per index, so every
// configuration is a distinct machine shape even when benchmarks repeat.
func warmMixedConfigs(tb testing.TB) []SimConfig {
	shapes := 4
	if v := os.Getenv("PAC_WARM_SHAPES"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 2 {
			tb.Fatalf("PAC_WARM_SHAPES=%q: want an integer >= 2", v)
		}
		shapes = n
	}
	mix := []string{"GS", "STREAM"}
	if v := os.Getenv("PAC_WARM_MIX"); v != "" {
		mix = mix[:0]
		for _, m := range strings.Split(v, ",") {
			if m = strings.TrimSpace(m); m != "" {
				mix = append(mix, m)
			}
		}
		if len(mix) == 0 {
			tb.Fatalf("PAC_WARM_MIX=%q: no benchmarks", v)
		}
	}
	cfgs := make([]SimConfig, shapes)
	for i := range cfgs {
		bench := mix[i%len(mix)]
		cfg := DefaultSimConfig(bench, ModePAC)
		cfg.Procs = []ProcSpec{{Benchmark: bench, Cores: 2}}
		cfg.Scale = 0.02
		cfg.AccessesPerCore = 1_000 + 250*i
		cfgs[i] = cfg
	}
	return cfgs
}

func BenchmarkWarmMixed(b *testing.B) {
	cfgs := warmMixedConfigs(b)
	run := func(b *testing.B, machCap int) {
		sc := sim.NewScratch()
		sc.SetMachineCacheCap(machCap)
		local := make([]SimConfig, len(cfgs))
		copy(local, cfgs)
		for i := range local {
			local[i].Scratch = sc
			// Warm pass: grows the arena and parks each shape (the LRU
			// keeps all of them, the single entry only the last).
			if _, err := RunBenchmark(local[i]); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := RunBenchmark(local[i%len(local)]); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		hits, misses, _ := sc.MachineCacheStats()
		if hits+misses > 0 {
			b.ReportMetric(100*float64(hits)/float64(hits+misses), "hit_%")
		}
	}
	b.Run("single", func(b *testing.B) { run(b, 1) })
	b.Run("lru", func(b *testing.B) { run(b, len(cfgs)) })
}
