// Command pacload is the cluster load-test harness: a traffic generator
// that drives a pacgw gateway (or a single pacd node) with many
// concurrent clients issuing a mixed hot/cold key stream, then publishes
// throughput and latency percentiles as BENCH_cluster.json so later PRs
// cannot regress fleet performance unnoticed.
//
// Hot requests repeat a small set of simulate bodies — after the first
// miss they are session-memo hits on whichever shard owns them, so the
// hot path measures routing + cache affinity. Cold requests carry a
// unique workload seed each, forcing a fresh session and a full
// simulation — the worst case the fleet must absorb without starving the
// hot path.
//
// With -mixed N, the hot/cold stream is replaced by N distinct
// configurations (same benchmark cycle, each with its own trace length,
// so each is a distinct session AND a distinct machine shape) issued in
// strict round-robin by the global request counter. Alternating shapes
// on every consecutive request is the worst case for a single-entry
// machine cache — the mode exists to measure how well the daemon's
// shape-keyed LRU and affinity batching absorb it, and the report gains
// the pac_machine_cache_{hits,misses,evictions} split scraped from the
// target. Run the target with a small -max-sessions so repeats miss the
// session memo and actually exercise the simulator.
//
// With -follow, pacload is instead a resumable job tail: it streams one
// job's server-sent events to stdout and survives connection drops (and
// even a backend crash/reboot behind the gateway) by reconnecting with
// the standard Last-Event-ID header, so the server's bounded replay ring
// fills the gap instead of losing progress lines.
//
// Usage:
//
//	pacload -gateway http://127.0.0.1:8090 -clients 1000 -requests 4000
//	pacload -gateway ... -hot-ratio 0.95 -hot-keys 8 -out BENCH_cluster.json
//	pacload -gateway ... -follow w0-j000017
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

type result struct {
	latencyMS float64
	cached    bool
	backend   string
	// cache is the X-Pac-Cache source of a synchronous response
	// (memo|disk|peer|miss; empty on a 202 or an old backend).
	cache string
}

func main() {
	var (
		gatewayURL = flag.String("gateway", "http://127.0.0.1:8090", "gateway (or pacd) base URL")
		clients    = flag.Int("clients", 1000, "concurrent client goroutines")
		requests   = flag.Int("requests", 4000, "total requests to issue")
		hotRatio   = flag.Float64("hot-ratio", 0.95, "fraction of requests drawn from the hot key set")
		hotKeys    = flag.Int("hot-keys", 8, "distinct hot request bodies")
		benchCSV   = flag.String("benchmarks", "GS,STREAM,BFS,FFT", "benchmarks the hot keys cycle through")
		mode       = flag.String("mode", "pac", "coalescing mode of every request")
		wait       = flag.Duration("wait", 60*time.Second, "synchronous ?wait= window per request")
		coldBase   = flag.Uint64("cold-seed-base", 1_000_000, "first seed of the cold key stream")
		mixed      = flag.Int("mixed", 0, "mixed-shape mode: N distinct configurations round-robin (replaces hot/cold traffic)")
		mixedAcc   = flag.Int("mixed-accesses", 2000, "trace length of the first mixed configuration; each next adds -mixed-step")
		mixedStep  = flag.Int("mixed-step", 500, "trace-length increment between mixed configurations")
		seed       = flag.Int64("seed", 1, "traffic generator seed")
		out        = flag.String("out", "BENCH_cluster.json", "output JSON path ('-' for stdout)")
		maxRetry   = flag.Int("max-retries", 50, "429 retries per request (honouring Retry-After)")
		follow     = flag.String("follow", "", "follow one job's SSE stream instead of load-testing (reconnects with Last-Event-ID)")
	)
	flag.Parse()

	if *follow != "" {
		if err := followJob(*gatewayURL, *follow); err != nil {
			fail(err)
		}
		return
	}

	benches := strings.Split(*benchCSV, ",")
	for i := range benches {
		benches[i] = strings.TrimSpace(benches[i])
	}
	if *hotKeys < 1 {
		*hotKeys = 1
	}
	// Hot bodies: a fixed, repeating set (seed 0 inherits the fleet base
	// options, so the whole hot set lives in the base session caches).
	hotBodies := make([][]byte, *hotKeys)
	for i := range hotBodies {
		hotBodies[i] = simBody(benches[i%len(benches)], *mode, 0)
	}
	// Mixed bodies: N distinct shapes (trace length varies per body), so
	// the strict round-robin below alternates machine shapes on every
	// consecutive request.
	var mixedBodies [][]byte
	if *mixed > 0 {
		mixedBodies = make([][]byte, *mixed)
		for i := range mixedBodies {
			mixedBodies[i] = mixedBody(benches[i%len(benches)], *mode,
				*mixedAcc+i**mixedStep)
		}
	}

	client := &http.Client{}
	var (
		next      atomic.Int64
		okCount   atomic.Int64
		errCount  atomic.Int64
		throttled atomic.Int64
		retried   atomic.Int64

		mu      sync.Mutex
		results []result
	)
	simURL := strings.TrimRight(*gatewayURL, "/") + "/v1/simulate?wait=" + wait.String()

	startedAt := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(c)))
			for {
				i := next.Add(1) - 1
				if i >= int64(*requests) {
					return
				}
				var body []byte
				switch {
				case mixedBodies != nil:
					// Round-robin by the GLOBAL counter, not per client:
					// consecutive requests alternate shapes deterministically
					// no matter how the clients interleave.
					body = mixedBodies[i%int64(len(mixedBodies))]
				case rng.Float64() < *hotRatio:
					body = hotBodies[rng.Intn(len(hotBodies))]
				default:
					// Cold: unique seed, distinct session, full simulation.
					body = simBody(benches[rng.Intn(len(benches))], *mode, *coldBase+uint64(i))
				}
				res, err := issue(client, simURL, body, *maxRetry, &throttled, &retried)
				if err != nil {
					errCount.Add(1)
					continue
				}
				okCount.Add(1)
				mu.Lock()
				results = append(results, res)
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(startedAt)

	lat := make([]float64, 0, len(results))
	cached := 0
	backends := map[string]int{}
	cacheSources := map[string]int{}
	var sum float64
	for _, r := range results {
		lat = append(lat, r.latencyMS)
		sum += r.latencyMS
		if r.cached {
			cached++
		}
		if r.backend != "" {
			backends[r.backend]++
		}
		if r.cache != "" {
			cacheSources[r.cache]++
		}
	}
	sort.Float64s(lat)
	mean := 0.0
	if len(lat) > 0 {
		mean = sum / float64(len(lat))
	}

	affHits, _ := scrapeMetric(client, *gatewayURL, "pac_gw_affinity_hits_total")
	affMisses, _ := scrapeMetric(client, *gatewayURL, "pac_gw_affinity_misses_total")
	ratio := 1.0
	if affHits+affMisses > 0 {
		ratio = affHits / (affHits + affMisses)
	}
	// Machine-cache split (pacd targets only; a gateway target reports
	// zeros — its backends each expose their own).
	machHits, _ := scrapeMetric(client, *gatewayURL, "pac_machine_cache_hits_total")
	machMisses, _ := scrapeMetric(client, *gatewayURL, "pac_machine_cache_misses_total")
	machEvicted, _ := scrapeMetric(client, *gatewayURL, "pac_machine_cache_evictions_total")
	jobsBatched, _ := scrapeMetric(client, *gatewayURL, "pac_jobs_affinity_batched_total")

	report := map[string]any{
		"schema":          "pac-bench-cluster/v1",
		"generated":       time.Now().UTC().Format(time.RFC3339),
		"gateway":         *gatewayURL,
		"clients":         *clients,
		"requests":        *requests,
		"hotRatio":        *hotRatio,
		"hotKeys":         *hotKeys,
		"mixed":           *mixed,
		"mode":            *mode,
		"ok":              okCount.Load(),
		"errors":          errCount.Load(),
		"throttled429":    throttled.Load(),
		"retries":         retried.Load(),
		"cachedHits":      cached,
		"durationSeconds": round2(elapsed.Seconds()),
		"throughputRPS":   round2(float64(okCount.Load()) / elapsed.Seconds()),
		"latencyMs": map[string]float64{
			"mean": round2(mean),
			"p50":  round2(percentile(lat, 0.50)),
			"p90":  round2(percentile(lat, 0.90)),
			"p99":  round2(percentile(lat, 0.99)),
			"max":  round2(percentile(lat, 1.0)),
		},
		"affinity": map[string]any{
			"hits":   affHits,
			"misses": affMisses,
			"ratio":  round4(ratio),
		},
		"machineCache": map[string]any{
			"hits":      machHits,
			"misses":    machMisses,
			"evictions": machEvicted,
		},
		"jobsAffinityBatched": jobsBatched,
		"backends":            backends,
		// Per-source hit split from the X-Pac-Cache headers: how many
		// answers came from the session memo, the durable store, a fleet
		// peer's store, or a fresh simulation.
		"cacheSources": cacheSources,
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fail(err)
	}
	blob = append(blob, '\n')
	if *out == "-" {
		os.Stdout.Write(blob)
	} else {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			fail(err)
		}
	}
	fmt.Fprintf(os.Stderr,
		"pacload: %d ok, %d errors, %d throttled in %.1fs — %.1f req/s, p99 %.1fms, affinity %.3f\n",
		okCount.Load(), errCount.Load(), throttled.Load(), elapsed.Seconds(),
		float64(okCount.Load())/elapsed.Seconds(), percentile(lat, 0.99), ratio)
	if machHits+machMisses > 0 {
		fmt.Fprintf(os.Stderr,
			"pacload: machine cache: %d hits, %d misses, %d evictions; %d jobs affinity-batched\n",
			int64(machHits), int64(machMisses), int64(machEvicted), int64(jobsBatched))
	}
	if len(cacheSources) > 0 {
		var parts []string
		for _, src := range []string{"memo", "disk", "peer", "miss"} {
			if n := cacheSources[src]; n > 0 {
				parts = append(parts, fmt.Sprintf("%s %d", src, n))
			}
		}
		fmt.Fprintf(os.Stderr, "pacload: cache sources: %s\n", strings.Join(parts, ", "))
	}
	if errCount.Load() > 0 {
		os.Exit(1)
	}
}

// issue posts one simulate request, honouring 429 Retry-After instead of
// hammering an overloaded fleet; the measured latency spans the whole
// request including backpressure waits (the latency a real client sees).
func issue(client *http.Client, url string, body []byte, maxRetry int,
	throttled, retried *atomic.Int64) (result, error) {
	start := time.Now()
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return result{}, err
		}
		payload, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return result{}, rerr
		}
		switch {
		case resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted:
			return result{
				latencyMS: float64(time.Since(start).Microseconds()) / 1000,
				cached:    bytes.Contains(payload, []byte(`"cached": true`)),
				backend:   resp.Header.Get("X-Pac-Backend"),
				cache:     resp.Header.Get("X-Pac-Cache"),
			}, nil
		case resp.StatusCode == http.StatusTooManyRequests && attempt < maxRetry:
			throttled.Add(1)
			retried.Add(1)
			delay := time.Second
			if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && ra > 0 {
				delay = time.Duration(ra) * time.Second
			}
			time.Sleep(delay)
		default:
			return result{}, fmt.Errorf("status %d: %s", resp.StatusCode, payload)
		}
	}
}

// followJob tails one job's server-sent events until the terminal done
// event. Dropped connections — a bounced gateway, a crashed-and-replayed
// backend — resume where they left off: the last seen event ID goes back
// as Last-Event-ID and the server replays only what was missed from its
// retention ring.
func followJob(base, jobID string) error {
	url := strings.TrimRight(base, "/") + "/v1/jobs/" + jobID + "/events"
	client := &http.Client{} // no timeout: the stream lives as long as the job
	lastID := ""
	for failures := 0; ; {
		req, err := http.NewRequest(http.MethodGet, url, nil)
		if err != nil {
			return err
		}
		req.Header.Set("Accept", "text/event-stream")
		if lastID != "" {
			req.Header.Set("Last-Event-ID", lastID)
		}
		resp, err := client.Do(req)
		if err == nil && resp.StatusCode != http.StatusOK {
			payload, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			err = fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(payload))
			// A 404 right after a crash means the replayed job has not been
			// re-listed yet; keep retrying like a dropped connection.
		}
		if err != nil {
			failures++
			if failures > 30 {
				return fmt.Errorf("following %s: %w", jobID, err)
			}
			fmt.Fprintf(os.Stderr, "pacload: follow reconnect after error: %v\n", err)
			time.Sleep(time.Second)
			continue
		}
		failures = 0
		done, serr := streamEvents(resp.Body, &lastID)
		resp.Body.Close()
		if done {
			return nil
		}
		if serr != nil {
			fmt.Fprintf(os.Stderr, "pacload: follow stream broke, resuming after id %s: %v\n", lastID, serr)
		} else {
			fmt.Fprintf(os.Stderr, "pacload: follow stream ended early, resuming after id %s\n", lastID)
		}
		time.Sleep(time.Second)
	}
}

// streamEvents consumes one SSE connection, printing each event's data
// to stdout and tracking the last event ID for resume. It returns done
// once the terminal event arrives; any earlier disconnect leaves done
// false so the caller reconnects.
func streamEvents(r io.Reader, lastID *string) (done bool, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var event string
	var data []string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "": // blank line dispatches the accumulated event
			if len(data) > 0 {
				fmt.Println(strings.Join(data, "\n"))
			}
			if event == "done" {
				return true, nil
			}
			event, data = "", nil
		case strings.HasPrefix(line, "id:"):
			*lastID = strings.TrimSpace(line[len("id:"):])
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(line[len("event:"):])
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimSpace(line[len("data:"):]))
		}
	}
	return false, sc.Err()
}

func simBody(bench, mode string, seed uint64) []byte {
	b, _ := json.Marshal(map[string]any{
		"benchmark": bench,
		"mode":      mode,
		"seed":      seed,
	})
	return b
}

// mixedBody is one fixed mixed-shape configuration: the trace length is
// what distinguishes it, making it both a distinct session (distinct
// options) and a distinct machine shape on the target.
func mixedBody(bench, mode string, accesses int) []byte {
	b, _ := json.Marshal(map[string]any{
		"benchmark":       bench,
		"mode":            mode,
		"accessesPerCore": accesses,
	})
	return b
}

// scrapeMetric reads one unlabeled series from the target's /metrics.
func scrapeMetric(client *http.Client, base, name string) (float64, bool) {
	resp, err := client.Get(strings.TrimRight(base, "/") + "/metrics")
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, false
	}
	for _, line := range strings.Split(string(blob), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseFloat(fields[1], 64)
			return v, err == nil
		}
	}
	return 0, false
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }
func round4(v float64) float64 { return math.Round(v*10000) / 10000 }

func fail(err error) {
	fmt.Fprintln(os.Stderr, "pacload:", err)
	os.Exit(1)
}
