// Command pactrace inspects the LLC-level request streams the coalescer
// sees: it generates a benchmark trace, optionally dumps it, and prints
// the distribution statistics that motivated the PAC design (page
// clustering, adjacency, cross-page opportunity — paper §2.3).
//
// Usage:
//
//	pactrace -bench BFS -n 20000            # distribution summary
//	pactrace -bench GS -dump -n 50 | head   # raw request dump
//	pactrace -bench GS -save gs.pact        # record a binary trace
//	pactrace -load gs.pact                  # summarise a recorded trace
//	pactrace -load gs.pact -dump            # dump a recorded trace
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"

	"github.com/pacsim/pac"
	"github.com/pacsim/pac/internal/cluster"
	"github.com/pacsim/pac/internal/mem"
	"github.com/pacsim/pac/internal/sim"
	"github.com/pacsim/pac/internal/trace"
)

func main() {
	var (
		bench = flag.String("bench", "GS", "benchmark to trace")
		n     = flag.Int("n", 20_000, "number of LLC requests to capture")
		cores = flag.Int("cores", 8, "simulated cores")
		seed  = flag.Uint64("seed", 42, "generator seed")
		dump  = flag.Bool("dump", false, "dump raw requests instead of the summary")
		save  = flag.String("save", "", "write the captured trace to this file (binary PACT format)")
		load  = flag.String("load", "", "read a recorded trace instead of capturing one")
	)
	flag.Parse()

	var reqs []mem.Request
	var err error
	name := *bench
	if *load != "" {
		reqs, err = loadTrace(*load)
		name = *load
	} else {
		reqs, err = capture(*bench, *cores, *seed, *n)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pactrace:", err)
		os.Exit(1)
	}

	if *save != "" {
		if err := saveTrace(*save, reqs); err != nil {
			fmt.Fprintln(os.Stderr, "pactrace:", err)
			os.Exit(1)
		}
		fmt.Printf("saved %d requests to %s\n", len(reqs), *save)
	}

	if *dump {
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		for _, r := range reqs {
			kind := "demand"
			if r.Prefetch {
				kind = "pf"
			}
			fmt.Fprintf(w, "%8d %-2s core%d %-6s 0x%012x page=0x%x block=%d\n",
				r.Issue, r.Op, r.Core, kind, r.Addr, mem.PPN(r.Addr), mem.BlockID(r.Addr))
		}
		return
	}
	summarize(name, reqs)
}

// saveTrace writes the binary trace file.
func saveTrace(path string, reqs []mem.Request) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.Write(f, reqs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// loadTrace reads a binary trace file.
func loadTrace(path string) ([]mem.Request, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.Read(f)
}

// capture runs the benchmark under the PAC configuration and records the
// first n LLC-level requests.
func capture(bench string, cores int, seed uint64, n int) ([]mem.Request, error) {
	cfg := sim.DefaultConfig(bench, pac.ModePAC)
	cfg.Procs = []sim.ProcSpec{{Benchmark: bench, Cores: cores}}
	cfg.Seed = seed
	// Size the trace length so roughly n requests emerge.
	cfg.AccessesPerCore = 4*n/cores + 1000
	var reqs []mem.Request
	cfg.TraceSink = func(r mem.Request) {
		if len(reqs) < n {
			reqs = append(reqs, r)
		}
	}
	runner, err := sim.NewRunner(cfg)
	if err != nil {
		return nil, err
	}
	if _, err := runner.Run(); err != nil {
		return nil, err
	}
	return reqs, nil
}

func summarize(bench string, reqs []mem.Request) {
	pages := map[uint64]int{}
	var loads, stores, atomics, prefetches int
	for _, r := range reqs {
		pages[mem.PPN(r.Addr)]++
		switch {
		case r.Prefetch:
			prefetches++
		case r.Op == mem.OpStore:
			stores++
		case r.Op == mem.OpAtomic:
			atomics++
		default:
			loads++
		}
	}
	counts := make([]int, 0, len(pages))
	for _, c := range pages {
		counts = append(counts, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))

	fmt.Printf("trace of %s: %d LLC requests\n", bench, len(reqs))
	fmt.Printf("  demand loads %d, stores/write-backs %d, atomics %d, prefetches %d\n",
		loads, stores, atomics, prefetches)
	fmt.Printf("  distinct pages touched: %d (%.2f requests/page)\n",
		len(pages), float64(len(reqs))/float64(len(pages)))
	top := counts
	if len(top) > 8 {
		top = top[:8]
	}
	fmt.Printf("  hottest pages (requests): %v\n", top)

	// DBSCAN view (Figures 8/9): eps = one page.
	addrs := make([]uint64, len(reqs))
	for i, r := range reqs {
		addrs[i] = r.Addr
	}
	res := cluster.DBSCAN(addrs, mem.PageSize, 3)
	clustered := len(reqs) - res.NoiseCount()
	fmt.Printf("  DBSCAN(eps=4KB): %d clusters, %d/%d requests clustered (%.1f%%)\n",
		res.Clusters, clustered, len(reqs), 100*float64(clustered)/float64(len(reqs)))
}
