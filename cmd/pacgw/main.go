// Command pacgw is the pacd fleet gateway: a stdlib-only front-end that
// consistent-hash-routes simulation and experiment jobs to backend pacd
// nodes by their canonical options hash, so repeated identical requests
// always land on the same warm session cache. It probes each backend's
// /readyz, ejects and routes around failing or booting nodes, fans sweep
// requests out across the fleet with a deterministic table merge, and
// exposes pac_gw_* Prometheus metrics. When a WAL-backed backend crashes
// and reboots, the gateway reconciles on reinstatement: it re-dispatches
// the node's orphaned simulate jobs through the ring
// (pac_gw_orphan_redispatch_total counts them).
//
// Usage:
//
//	pacgw -addr :8090 -backends http://10.0.0.1:8080,http://10.0.0.2:8080
//	pacgw -addr :8090 -backends localhost:18081,localhost:18082 -quick
//
// The base-option flags (-cores, -accesses, -scale, -seed, -quick, ...)
// MUST match the backends' pacd flags: the gateway resolves each request
// against this base to compute the same canonical routing key the
// backends key their session pools with (README "Running a pacd fleet").
//
// When the backends run with -store, the gateway enables fleet cache
// exchange automatically: every forwarded simulate request carries an
// X-Pac-Peers header naming the key's other live ring candidates, so a
// backend that misses its local store fetches the entry from a peer via
// GET /v1/store/{key} instead of re-simulating. No gateway flag is
// needed; responses report the source in X-Pac-Cache (memo|disk|peer|
// miss).
//
// Endpoints:
//
//	GET    /healthz                  gateway + per-backend liveness
//	GET    /metrics                  pac_gw_* Prometheus exposition
//	POST   /v1/simulate              routed by canonical sim key
//	POST   /v1/experiments/{id}/run  routed by (options hash, id)
//	POST   /v1/sweep                 fan-out across the fleet, merged table
//	GET    /v1/experiments           proxied
//	GET    /v1/jobs[...]             merged / located across the fleet
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/pacsim/pac/internal/experiments"
	"github.com/pacsim/pac/internal/gateway"
)

func main() {
	var (
		addr        = flag.String("addr", ":8090", "listen address")
		backendsCSV = flag.String("backends", "", "comma-separated backend pacd base URLs (required)")
		replicas    = flag.Int("replicas", gateway.DefaultReplicas, "virtual nodes per backend on the hash ring")
		healthIvl   = flag.Duration("health-interval", time.Second, "backend /readyz probe period")
		failAfter   = flag.Int("fail-after", 2, "consecutive failures before a backend is ejected")
		recoverAft  = flag.Int("recover-after", 2, "consecutive successful probes before reinstating")
		maxRetries  = flag.Int("max-retries", 2, "failover attempts per routed request after a transport error")
		retryBase   = flag.Duration("retry-base", 100*time.Millisecond, "base delay of the failover backoff")
		sweepConc   = flag.Int("sweep-concurrency", 16, "in-flight simulations per sweep fan-out")
		sweepTO     = flag.Duration("sweep-timeout", 10*time.Minute, "cap on one whole sweep fan-out")

		// Fleet base options — must match the backends' pacd flags.
		cores    = flag.Int("cores", 8, "simulated cores of the fleet base options")
		accesses = flag.Int("accesses", 100_000, "trace length per core of the fleet base options")
		scale    = flag.Float64("scale", 1.0, "working-set scale factor of the fleet base options")
		seed     = flag.Uint64("seed", 42, "workload generator seed of the fleet base options")
		quick    = flag.Bool("quick", false, "fast smoke configuration (must match backend -quick)")
	)
	flag.Parse()

	if strings.TrimSpace(*backendsCSV) == "" {
		fail(errors.New("-backends is required (comma-separated pacd base URLs)"))
	}
	var backends []string
	for _, b := range strings.Split(*backendsCSV, ",") {
		if b = strings.TrimSpace(b); b != "" {
			backends = append(backends, b)
		}
	}

	base := experiments.Options{
		Cores:           *cores,
		AccessesPerCore: *accesses,
		Scale:           *scale,
		Seed:            *seed,
	}
	if *quick {
		base.Cores = 2
		base.AccessesPerCore = 5_000
		base.Scale = 0.02
		base.L1Bytes = 2 << 10
		base.LLCBytes = 128 << 10
	}

	gw, err := gateway.New(gateway.Config{
		Backends:         backends,
		Base:             base,
		Replicas:         *replicas,
		HealthInterval:   *healthIvl,
		FailThreshold:    *failAfter,
		RecoverThreshold: *recoverAft,
		MaxRetries:       *maxRetries,
		RetryBase:        *retryBase,
		SweepConcurrency: *sweepConc,
		SweepTimeout:     *sweepTO,
	})
	if err != nil {
		fail(err)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           gw.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("pacgw: serving on %s, %d backends: %s", *addr, len(backends), strings.Join(backends, ", "))

	select {
	case err := <-errCh:
		fail(err)
	case <-ctx.Done():
	}

	log.Printf("pacgw: shutdown signal, draining connections")
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("pacgw: http shutdown: %v", err)
	}
	gw.Close()
	log.Printf("pacgw: drained cleanly")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "pacgw:", err)
	os.Exit(1)
}
