// Command pacsim runs the PAC reproduction experiments: it regenerates
// the paper's tables and figures (DESIGN.md §4 lists the IDs) or runs a
// single benchmark comparison.
//
// Usage:
//
//	pacsim -list
//	pacsim -experiment fig6a [-accesses N] [-cores N] [-scale F] [-csv]
//	pacsim -experiment all [-parallel N]
//	pacsim -bench GS [-accesses N]
//	pacsim -config run.json -experiment all
//
// Experiment runs precompute their simulations on -parallel workers
// (default GOMAXPROCS); the rendered tables are byte-identical to a
// sequential (-parallel 1) run.
//
// A JSON config file (-config) carries the same options as the flags:
//
//	{"cores": 8, "accessesPerCore": 100000, "scale": 1.0, "seed": 42, "parallel": 8}
//
// The default scale matches the paper's Table 1 machine (8 cores, 100k
// accesses per core); -quick shrinks everything for a fast smoke run.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/pacsim/pac"
)

func main() {
	if err := run(); err != nil {
		fail(err)
	}
}

// run carries the whole invocation so deferred teardown — profile
// flushes above all — executes on every exit path except the bare
// usage error.
func run() error {
	var (
		list       = flag.Bool("list", false, "list available experiments and exit")
		experiment = flag.String("experiment", "", "experiment ID to run (or \"all\")")
		bench      = flag.String("bench", "", "run a single benchmark comparison instead of an experiment")
		accesses   = flag.Int("accesses", 100_000, "trace length per core")
		cores      = flag.Int("cores", 8, "simulated cores")
		scale      = flag.Float64("scale", 1.0, "working-set scale factor")
		seed       = flag.Uint64("seed", 42, "workload generator seed")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned text")
		chart      = flag.Bool("chart", false, "append an ASCII bar chart of each table's last numeric column")
		quick      = flag.Bool("quick", false, "fast smoke configuration (small caches, short traces)")
		parallel   = flag.Int("parallel", runtime.GOMAXPROCS(0), "simulation workers for experiment runs (1 = sequential; results are identical either way)")
		config     = flag.String("config", "", "JSON options file (overridden by explicit flags)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file on exit")
		jsonOut    = flag.Bool("json", false, "emit machine-readable JSON: full three-mode results with -bench, one {id, tables} object per experiment with -experiment")
		outDir     = flag.String("out", "", "also write each experiment table to DIR/<id>.txt and .csv")
		verbose    = flag.Bool("v", false, "print per-simulation progress")

		// Deterministic fault-injection plan; all zero (the default)
		// disables injection.
		faultCRC           = flag.Float64("fault-crc-rate", 0, "per-packet link CRC error probability [0,1]")
		faultPoison        = flag.Float64("fault-poison-rate", 0, "per-packet poisoned-response probability [0,1]")
		faultStallInterval = flag.Int64("fault-stall-interval", 0, "mean cycles between vault ECC-scrub stalls (0 disables)")
		faultStallCycles   = flag.Int64("fault-stall-cycles", 0, "cycles a vault stays frozen per stall (0 = default 200)")
		faultSeed          = flag.Uint64("fault-seed", 0, "fault-plan seed, mixed with the workload seed")
	)
	flag.Parse()

	// Profiling mirrors `pacd -pprof`, but as one-shot files: the CPU
	// profile covers the whole invocation, and the heap profile is
	// written on exit with allocation sites retained (alloc_space), the
	// view the zero-alloc hot-path work optimises for.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		path := *memprofile
		defer func() {
			if err := writeAllocProfile(path); err != nil {
				fmt.Fprintln(os.Stderr, "pacsim:", err)
			}
		}()
	}

	faults := pac.FaultConfig{
		LinkCRCRate:        *faultCRC,
		PoisonRate:         *faultPoison,
		VaultStallInterval: *faultStallInterval,
		VaultStallCycles:   *faultStallCycles,
		Seed:               *faultSeed,
	}
	if err := faults.Validate(); err != nil {
		return err
	}

	if *list {
		fmt.Println("Experiments (paper artefact -> ID):")
		for _, e := range pac.Experiments() {
			fmt.Printf("  %-8s %-11s %s\n", e.ID, e.Artefact, e.Desc)
		}
		return nil
	}

	opts := pac.ExperimentOptions{
		Cores:           *cores,
		AccessesPerCore: *accesses,
		Scale:           *scale,
		Seed:            *seed,
		Faults:          faults,
	}
	if *config != "" {
		fileOpts, err := loadConfig(*config)
		if err != nil {
			return err
		}
		// The config file provides defaults; explicitly set flags win.
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if !set["cores"] && fileOpts.Cores > 0 {
			opts.Cores = fileOpts.Cores
		}
		if !set["accesses"] && fileOpts.AccessesPerCore > 0 {
			opts.AccessesPerCore = fileOpts.AccessesPerCore
		}
		if !set["scale"] && fileOpts.Scale > 0 {
			opts.Scale = fileOpts.Scale
		}
		if !set["seed"] && fileOpts.Seed != 0 {
			opts.Seed = fileOpts.Seed
		}
		if !set["parallel"] && fileOpts.Parallel > 0 {
			*parallel = fileOpts.Parallel
		}
		if fileOpts.L1Bytes > 0 {
			opts.L1Bytes = fileOpts.L1Bytes
		}
		if fileOpts.LLCBytes > 0 {
			opts.LLCBytes = fileOpts.LLCBytes
		}
	}
	if *quick {
		opts.Cores = 2
		opts.AccessesPerCore = 5_000
		opts.Scale = 0.02
		opts.L1Bytes = 2 << 10
		opts.LLCBytes = 128 << 10
	}

	opts.Parallel = *parallel

	var progress func(string)
	if *verbose {
		progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}

	// simFailed latches when any simulation ends with a sim-failed
	// terminal event (an internal error such as the MaxCycles wedge
	// guard, as opposed to cancellation); the event itself is surfaced on
	// stderr and the process exits non-zero even if a renderer swallowed
	// the error.
	var simFailed atomic.Bool
	hooks := &pac.TelemetryHooks{Observer: func(ev pac.TelemetryEvent) {
		if ev.Kind != pac.TelemetryKindSimFailed {
			return
		}
		simFailed.Store(true)
		fmt.Fprintf(os.Stderr,
			"pacsim: terminal event %s: bench=%s mode=%s cycles=%d faults(crc=%d stall=%d poison=%d)\n",
			ev.Kind, ev.Bench, ev.Mode, ev.Cycles, ev.FaultsCRC, ev.FaultsStall, ev.FaultsPoison)
	}}

	session := pac.NewExperimentSession(opts, progress)
	session.Hooks = hooks

	// Ctrl-C / SIGTERM cancels the in-flight simulations instead of
	// killing the process mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// precompute fans the simulations an experiment selection needs out
	// over the worker pool; the tables render from the memo afterwards,
	// byte-identical to a sequential run.
	precompute := func(ids ...string) error {
		if *parallel <= 1 {
			return nil
		}
		return session.Precompute(ctx, *parallel, ids...)
	}

	switch {
	case *bench != "":
		if err := runBench(*bench, opts, hooks, *jsonOut); err != nil {
			return err
		}
	case *experiment == "all":
		if err := precompute(); err != nil {
			return err
		}
		// A full run also writes the combined transcript (every table,
		// text-rendered) under -out as results_full.txt — the file
		// EXPERIMENTS.md cites — instead of relying on a shell redirect
		// into the working directory.
		var combined *os.File
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				return err
			}
			var err error
			combined, err = os.Create(*outDir + "/results_full.txt")
			if err != nil {
				return err
			}
			defer combined.Close()
		}
		for _, e := range pac.Experiments() {
			if err := runExperiment(session, e.ID, *csv, *chart, *jsonOut, *verbose, *outDir, combined); err != nil {
				return err
			}
		}
	case *experiment != "":
		if err := precompute(*experiment); err != nil {
			return err
		}
		if err := runExperiment(session, *experiment, *csv, *chart, *jsonOut, *verbose, *outDir, nil); err != nil {
			return err
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
	if simFailed.Load() {
		return fmt.Errorf("one or more simulations ended in a sim-failed terminal event")
	}
	return nil
}

// writeAllocProfile dumps the allocs profile (allocation sites with
// alloc_space retained) to path, the view the zero-alloc hot-path work
// is tuned against.
func writeAllocProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC() // flush accumulated allocation records
	return pprof.Lookup("allocs").WriteTo(f, 0)
}

// fileOptions is the JSON schema of -config.
type fileOptions struct {
	Cores           int     `json:"cores"`
	AccessesPerCore int     `json:"accessesPerCore"`
	Scale           float64 `json:"scale"`
	Seed            uint64  `json:"seed"`
	L1Bytes         int     `json:"l1Bytes"`
	LLCBytes        int     `json:"llcBytes"`
	Parallel        int     `json:"parallel"`
}

// loadConfig parses a JSON options file.
func loadConfig(path string) (fileOptions, error) {
	var fo fileOptions
	data, err := os.ReadFile(path)
	if err != nil {
		return fo, err
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&fo); err != nil {
		return fo, fmt.Errorf("config %s: %w", path, err)
	}
	return fo, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "pacsim:", err)
	os.Exit(1)
}

func runExperiment(session *pac.ExperimentSession, id string, csv, chart, jsonOut, verbose bool, outDir string, combined *os.File) error {
	start := time.Now()
	tables, err := pac.RunExperimentIn(session, id)
	if err != nil {
		return err
	}
	if outDir != "" {
		if err := writeTables(outDir, id, tables); err != nil {
			return err
		}
	}
	if combined != nil {
		for _, t := range tables {
			if err := t.WriteText(combined); err != nil {
				return err
			}
			fmt.Fprintln(combined)
		}
	}
	if jsonOut {
		// One object per experiment, same table encoding as the pacd
		// API's ExperimentResult payloads.
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			ID     string       `json:"id"`
			Tables []*pac.Table `json:"tables"`
		}{id, tables})
	}
	for _, t := range tables {
		if csv {
			if err := t.WriteCSV(os.Stdout); err != nil {
				return err
			}
		} else {
			if err := t.WriteText(os.Stdout); err != nil {
				return err
			}
		}
		if chart && len(t.Headers()) >= 2 {
			fmt.Println()
			c := pac.ChartFromTable(t, 0, chartColumn(t))
			c.Width = 40
			if err := c.WriteText(os.Stdout); err != nil {
				return err
			}
		}
		fmt.Println()
	}
	if verbose {
		fmt.Fprintf(os.Stderr, "%s completed in %v\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// writeTables stores an experiment's tables under dir as text and CSV.
func writeTables(dir, id string, tables []*pac.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(path string, render func(*os.File, *pac.Table) error, t *pac.Table) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := render(f, t); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	for i, t := range tables {
		suffix := ""
		if len(tables) > 1 {
			suffix = fmt.Sprintf("-%d", i+1)
		}
		base := dir + "/" + id + suffix
		if err := write(base+".txt", func(f *os.File, t *pac.Table) error { return t.WriteText(f) }, t); err != nil {
			return err
		}
		if err := write(base+".csv", func(f *os.File, t *pac.Table) error { return t.WriteCSV(f) }, t); err != nil {
			return err
		}
	}
	return nil
}

// chartColumn picks the most interesting column to chart: the first
// percentage column when one exists (the PAC metric), the last column
// otherwise.
func chartColumn(t *pac.Table) int {
	headers := t.Headers()
	for i, h := range headers {
		if strings.Contains(h, "%") {
			return i
		}
	}
	return len(headers) - 1
}

func runBench(name string, opts pac.ExperimentOptions, hooks *pac.TelemetryHooks, jsonOut bool) error {
	cfg := pac.DefaultSimConfig(name, pac.ModePAC)
	cfg.Procs = []pac.ProcSpec{{Benchmark: name, Cores: opts.Cores}}
	cfg.AccessesPerCore = opts.AccessesPerCore
	cfg.Scale = opts.Scale
	cfg.Seed = opts.Seed
	cfg.Faults = opts.Faults
	cfg.Hooks = hooks
	cmp, err := pac.CompareModes(cfg)
	if err != nil {
		return err
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(map[string]interface{}{
			"benchmark": name,
			"baseline":  cmp.Baseline,
			"dmc":       cmp.DMC,
			"pac":       cmp.PAC,
			"speedupPct": map[string]float64{
				"pac": cmp.Speedup(),
				"dmc": cmp.DMCSpeedup(),
			},
		})
	}
	fmt.Printf("benchmark %s (%d cores, %d accesses/core)\n", name, opts.Cores, opts.AccessesPerCore)
	fmt.Printf("  coalescing efficiency: PAC %.2f%%  DMC %.2f%%\n",
		cmp.PAC.CoalescingEfficiency(), cmp.DMC.CoalescingEfficiency())
	fmt.Printf("  runtime improvement:   PAC %.2f%%  DMC %.2f%%\n", cmp.Speedup(), cmp.DMCSpeedup())
	fmt.Printf("  bank conflicts:        base %d -> PAC %d (-%.2f%%)\n",
		cmp.Baseline.HMC.BankConflicts, cmp.PAC.HMC.BankConflicts, cmp.BankConflictReduction())
	fmt.Printf("  device energy saving:  %.2f%%\n", cmp.EnergySaving())
	fmt.Printf("  avg load latency:      base %.1fns -> PAC %.1fns (P95 %.1fns -> %.1fns)\n",
		cmp.Baseline.AvgLoadLatencyNS(), cmp.PAC.AvgLoadLatencyNS(),
		cmp.Baseline.LoadLatencyPercentileNS(0.95), cmp.PAC.LoadLatencyPercentileNS(0.95))
	fmt.Printf("  device bandwidth:      base %.2f GB/s -> PAC %.2f GB/s\n",
		cmp.Baseline.AvgBandwidthGBs(), cmp.PAC.AvgBandwidthGBs())
	return nil
}
