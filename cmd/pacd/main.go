// Command pacd is the resident PAC simulation service: it keeps one
// process-wide result cache warm across many small queries and exposes
// the experiment harness over an HTTP JSON API with Prometheus metrics.
//
// Usage:
//
//	pacd -addr :8080
//	pacd -addr :8080 -quick -pprof
//	pacd -cores 8 -accesses 100000 -parallel 8 -queue 32
//	pacd -store /var/lib/pacd -store-warm 256
//	pacd -store /var/lib/pacd -peers http://b1:8081,http://b2:8082
//
// With -store, completed simulation results persist in a crash-safe,
// content-addressed store under the given directory: restarts answer
// repeat requests from disk (and warm the session cache from the index,
// bounded by -store-warm), fleet peers exchange entries over GET
// /v1/store/{key}, and -store-max-bytes/-store-max-entries cap the
// on-disk footprint with LRU eviction.
//
// With -wal, every accepted job is journaled to a write-ahead log before
// it runs: a daemon killed mid-job replays the unfinished work at the
// next boot under the original job IDs. Add -checkpoint-dir and long
// simulations also persist periodic deterministic checkpoints, so the
// replay resumes mid-run instead of starting over (-checkpoint-interval
// sets the cadence in simulated cycles). See DESIGN.md §13.
//
// Endpoints (see internal/server and README "Running pacd"):
//
//	GET  /healthz    liveness
//	GET  /readyz     readiness (503 while booting or draining)
//	GET  /metrics    Prometheus text exposition
//	POST /v1/simulate, POST /v1/experiments/{id}/run, GET /v1/jobs/{id}, ...
//
// On SIGINT/SIGTERM the daemon stops accepting work, drains the job
// queue (bounded by -drain-timeout), and exits 0 on a clean drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"github.com/pacsim/pac"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		cores        = flag.Int("cores", 8, "simulated cores of the default session")
		accesses     = flag.Int("accesses", 100_000, "trace length per core of the default session")
		scale        = flag.Float64("scale", 1.0, "working-set scale factor of the default session")
		seed         = flag.Uint64("seed", 42, "workload generator seed of the default session")
		quick        = flag.Bool("quick", false, "fast smoke configuration (small caches, short traces)")
		parallel     = flag.Int("parallel", runtime.GOMAXPROCS(0), "simulation workers per experiment job")
		concurrency  = flag.Int("concurrency", runtime.GOMAXPROCS(0), "jobs executing at once")
		queue        = flag.Int("queue", 16, "bounded job queue depth (full queue answers 429)")
		maxSessions  = flag.Int("max-sessions", 8, "LRU cap on distinct-option result-cache sessions")
		affinity     = flag.Int("affinity-window", 0, "job reorder window for shape-affinity batching (0 = default 8, negative disables)")
		machCache    = flag.Int("machine-cache", 0, "parked machines per scratch arena, LRU-evicted beyond it (0 = default)")
		reqTimeout   = flag.Duration("request-timeout", 60*time.Second, "cap on synchronous ?wait= windows")
		jobTimeout   = flag.Duration("job-timeout", 15*time.Minute, "abort jobs running longer than this")
		jobDeadline  = flag.Duration("job-deadline", 0, "per-attempt watchdog deadline; overrides -job-timeout when set")
		maxRetries   = flag.Int("max-retries", 2, "retries per job after a watchdog kill, panic, or internal error (0 disables)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "grace period for in-flight jobs on shutdown")
		pprofOn      = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		node         = flag.String("node", "", "node name within a pacgw fleet (sets X-Pac-Node and job attribution)")

		// Durable result store; empty -store keeps the daemon memory-only.
		storeDir     = flag.String("store", "", "directory of the durable content-addressed result store (empty disables)")
		storeWarm    = flag.Int("store-warm", 256, "max store entries that seed the session cache at boot (0 disables)")
		storeBytes   = flag.Int64("store-max-bytes", 1<<30, "byte cap on stored entries, LRU-evicted beyond it (negative = no cap)")
		storeEntries = flag.Int("store-max-entries", 1<<16, "count cap on stored entries, LRU-evicted beyond it (negative = no cap)")
		peers        = flag.String("peers", "", "comma-separated base URLs of fleet peers to ask on a store miss")

		// Crash-safe job durability; empty -wal keeps jobs in memory only.
		walPath   = flag.String("wal", "", "write-ahead job journal file; unfinished jobs replay at boot (empty disables)")
		ckptDir   = flag.String("checkpoint-dir", "", "directory for periodic sim checkpoints; replayed jobs resume mid-run (empty disables)")
		ckptEvery = flag.Int64("checkpoint-interval", 0, "simulated cycles between checkpoints (0 = default 2000000)")

		// Fault-plan flags of the default session; all zero (the default)
		// disables injection. Per-request plans arrive through the
		// POST /v1/simulate fault* fields instead.
		faultCRC           = flag.Float64("fault-crc-rate", 0, "per-packet link CRC error probability [0,1]")
		faultPoison        = flag.Float64("fault-poison-rate", 0, "per-packet poisoned-response probability [0,1]")
		faultStallInterval = flag.Int64("fault-stall-interval", 0, "mean cycles between vault ECC-scrub stalls (0 disables)")
		faultStallCycles   = flag.Int64("fault-stall-cycles", 0, "cycles a vault stays frozen per stall (0 = default 200)")
		faultSeed          = flag.Uint64("fault-seed", 0, "fault-plan seed, mixed with the workload seed")
	)
	flag.Parse()

	if *jobDeadline > 0 {
		*jobTimeout = *jobDeadline
	}
	faults := pac.FaultConfig{
		LinkCRCRate:        *faultCRC,
		PoisonRate:         *faultPoison,
		VaultStallInterval: *faultStallInterval,
		VaultStallCycles:   *faultStallCycles,
		Seed:               *faultSeed,
	}
	if err := faults.Validate(); err != nil {
		fail(err)
	}

	opts := pac.ExperimentOptions{
		Cores:           *cores,
		AccessesPerCore: *accesses,
		Scale:           *scale,
		Seed:            *seed,
		Faults:          faults,
	}
	if *quick {
		opts.Cores = 2
		opts.AccessesPerCore = 5_000
		opts.Scale = 0.02
		opts.L1Bytes = 2 << 10
		opts.LLCBytes = 128 << 10
	}

	// One registry shared by the store and the server, so pac_store_* and
	// the serving metrics land in the same /metrics exposition.
	registry := pac.NewTelemetryRegistry()
	var resultStore *pac.Store
	if *storeDir != "" {
		var err error
		resultStore, err = pac.OpenStore(pac.StoreConfig{
			Dir:        *storeDir,
			MaxBytes:   *storeBytes,
			MaxEntries: *storeEntries,
			Registry:   registry,
		})
		if err != nil {
			fail(err)
		}
		log.Printf("pacd: store %s (%d entries, %d bytes)", *storeDir, resultStore.Len(), resultStore.Bytes())
	}
	var peerURLs []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerURLs = append(peerURLs, p)
		}
	}

	// The journal opens before the server so boot replay sees the orphans
	// of the previous process; it shares the registry for pac_wal_*.
	var (
		jobWAL    *pac.WAL
		recovered []pac.WALJob
	)
	if *walPath != "" {
		var err error
		jobWAL, recovered, err = pac.OpenWAL(pac.WALConfig{Path: *walPath, Registry: registry})
		if err != nil {
			fail(err)
		}
		if len(recovered) > 0 {
			log.Printf("pacd: wal %s recovered %d unfinished jobs", *walPath, len(recovered))
		} else {
			log.Printf("pacd: wal %s", *walPath)
		}
	}

	srv := pac.NewServer(pac.ServerConfig{
		Options:         opts,
		Parallel:        *parallel,
		Concurrency:     *concurrency,
		QueueDepth:      *queue,
		MaxSessions:     *maxSessions,
		AffinityWindow:  *affinity,
		MachineCache:    *machCache,
		RequestTimeout:  *reqTimeout,
		JobTimeout:      *jobTimeout,
		MaxRetries:      *maxRetries,
		EnablePprof:     *pprofOn,
		NodeID:          *node,
		Registry:        registry,
		Store:           resultStore,
		StoreWarm:       *storeWarm,
		Peers:           peerURLs,
		WAL:             jobWAL,
		Recovered:       recovered,
		CheckpointDir:   *ckptDir,
		CheckpointEvery: *ckptEvery,
	})
	if resultStore != nil {
		if v, ok := srv.Registry().Value("pac_store_warmed_total"); ok {
			log.Printf("pacd: store warm-up seeded %d session entries", int(v))
		}
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("pacd: serving on %s (cores=%d accesses=%d scale=%.2f parallel=%d queue=%d)",
		*addr, opts.Cores, opts.AccessesPerCore, opts.Scale, *parallel, *queue)

	select {
	case err := <-errCh:
		fail(err)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting connections, then let the job
	// queue unwind before exiting.
	log.Printf("pacd: shutdown signal, draining (timeout %v)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("pacd: http shutdown: %v", err)
	}
	if err := srv.Drain(drainCtx); err != nil {
		if resultStore != nil {
			resultStore.Close() // best-effort durability even on a bad drain
		}
		if jobWAL != nil {
			jobWAL.Close() // the jobs the drain abandoned replay next boot
		}
		fail(fmt.Errorf("drain: %w", err))
	}
	if resultStore != nil {
		// Flush after the drain so the write-throughs of the last in-flight
		// jobs are in the index; Close compacts and fsyncs the journal, so
		// the next boot replays a clean one-record-per-entry index. (An
		// unclean kill is still safe — entry files are committed by rename
		// and orphans are re-adopted — this just makes clean exits cheap.)
		if err := resultStore.Flush(); err != nil {
			log.Printf("pacd: store flush: %v", err)
		}
		if err := resultStore.Close(); err != nil {
			log.Printf("pacd: store close: %v", err)
		}
	}
	if jobWAL != nil {
		// After a clean drain every journaled job has its terminal record;
		// Flush compacts the journal so the next boot replays nothing.
		if err := jobWAL.Flush(); err != nil {
			log.Printf("pacd: wal flush: %v", err)
		}
		if err := jobWAL.Close(); err != nil {
			log.Printf("pacd: wal close: %v", err)
		}
	}
	log.Printf("pacd: drained cleanly")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "pacd:", err)
	os.Exit(1)
}
