# PAC reproduction — common developer targets. Stdlib-only Go; no
# external dependencies.

GO ?= go

.PHONY: all build test test-short test-race smoke serve smoke-serve \
        smoke-cluster smoke-store smoke-recovery bench-cluster chaos \
        vet fmt bench bench-kernel bench-alloc bench-warm test-alloc figures \
        figures-quick examples fuzz fuzz-smoke verify clean

all: vet test build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# Full suite under the race detector; the experiment harness runs its
# simulations on a concurrent worker pool, so this is tier-1 for any
# change to internal/experiments.
test-race:
	$(GO) test -race ./...

# End-to-end smoke: the whole paper reproduction at quick scale on four
# workers (output is byte-identical to -parallel 1).
smoke:
	$(GO) run ./cmd/pacsim -experiment all -quick -parallel 4

# Run the pacd simulation service locally (README "Running pacd" has the
# curl examples).
serve:
	$(GO) run ./cmd/pacd -addr :8080

# End-to-end service smoke: start pacd, exercise the API, check the
# memo-hit telemetry, and verify a clean SIGTERM drain.
smoke-serve:
	scripts/smoke_serve.sh

# End-to-end fleet smoke: a pacgw gateway over two pacd backends —
# routing, session-cache affinity, fan-out sweep, backend kill with
# ejection, and a clean gateway drain.
smoke-cluster:
	scripts/smoke_cluster.sh

# End-to-end durable-store smoke: simulate → restart pacd → repeat is a
# disk hit; warm boot seeds the memo; on a 3-node fleet a cold node
# answers from a peer's store. Emits BENCH_store.json.
smoke-store:
	scripts/smoke_store.sh

# End-to-end crash-recovery smoke: SIGKILL a WAL-backed pacd mid-job,
# restart it, and require the journal replay to resume the simulation
# from its last checkpoint with a result identical to an uninterrupted
# run. Also covers pacload -follow SSE resume and torn-journal boot.
# Emits BENCH_recovery.json.
smoke-recovery:
	scripts/smoke_recovery.sh

# Fleet load benchmark: pacload drives the gateway with a mixed hot/cold
# key stream and distills throughput/latency/affinity into
# BENCH_cluster.json.
bench-cluster:
	scripts/bench_cluster.sh

# Chaos smoke under the race detector: the fault-injection subsystem,
# the sim-level fault/equivalence suite, the daemon resilience tests
# (watchdog kills, retry with backoff, panic recovery), and the gateway
# cluster chaos suite (backend death mid-job, dead fleet).
chaos:
	$(GO) test -race ./internal/fault/
	$(GO) test -race -run 'Fault|Chaos|Watchdog|Retr|Panic|Poison' ./internal/sim/ ./internal/server/
	$(GO) test -race -run 'Chaos' ./internal/gateway/

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

# One testing.B bench per paper table/figure plus ablations.
bench:
	$(GO) test -bench=. -benchmem ./...

# Event-kernel baseline: figure benches plus the event-vs-reference
# driver comparison, distilled into BENCH_kernel.json (ns/op, skipped-
# cycle ratios, per-mode speedups).
bench-kernel:
	scripts/bench_baseline.sh

# Allocation baseline: the BenchmarkAllocs suite distilled into
# BENCH_alloc.json (ns/op, B/op, allocs/op). Fails if any steady-state
# path regressed from 0 allocs/op.
bench-alloc:
	scripts/bench_alloc.sh

# Mixed-shape warm baseline: BenchmarkWarmMixed (single-entry vs
# shape-keyed LRU machine cache on an alternating-shape schedule) plus a
# live pacd smoke whose machine-cache hits must exceed misses, distilled
# into BENCH_warm.json. Fails below the 1.30x warm-speedup floor.
bench-warm:
	scripts/bench_warm.sh

# The steady-state zero-alloc unit gates plus the arena aliasing
# oracles. Must run WITHOUT -race: race instrumentation allocates, so
# the gates skip themselves under the race detector.
test-alloc:
	$(GO) test -run 'SteadyStateAllocFree|ScratchReuse|Poison|Aliasing' \
		./internal/coalesce/ ./internal/mshr/ ./internal/hmc/ \
		./internal/core/ ./internal/sim/ ./internal/arena/

# Regenerate every paper artefact at full Table 1 scale.
figures:
	$(GO) run ./cmd/pacsim -experiment all

figures-quick:
	$(GO) run ./cmd/pacsim -experiment all -quick

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/hbmport
	$(GO) run ./examples/graphanalytics
	$(GO) run ./examples/multiprocess
	$(GO) run ./examples/prefetchdemo

# Short fuzzing passes over the binary-format parser, the coalescing
# pipeline, the gateway's consistent-hash ring, and the two durability
# journal parsers (job WAL, store index).
fuzz:
	$(GO) test ./internal/trace/ -fuzz FuzzRead -fuzztime 30s
	$(GO) test ./internal/core/ -fuzz FuzzPipeline -fuzztime 30s
	$(GO) test ./internal/gateway/ -fuzz FuzzRing -fuzztime 30s
	$(GO) test ./internal/wal/ -fuzz FuzzRecord -fuzztime 30s
	$(GO) test ./internal/store/ -fuzz FuzzJournal -fuzztime 30s

# The CI-sized fuzz pass: ~30s total across every target, on top of the
# always-on seed-corpus replay in the regular test run.
fuzz-smoke:
	$(GO) test ./internal/trace/ -fuzz FuzzRead -fuzztime 5s
	$(GO) test ./internal/core/ -fuzz FuzzPipeline -fuzztime 5s
	$(GO) test ./internal/gateway/ -fuzz FuzzRing -fuzztime 5s
	$(GO) test ./internal/wal/ -fuzz FuzzRecord -fuzztime 5s
	$(GO) test ./internal/store/ -fuzz FuzzJournal -fuzztime 5s

# The local pre-merge gate: formatting, vet, build, the full test suite,
# and the pinned static analyzers when they are installed (they are
# warn-only, matching the CI gate — this repo is stdlib-only, so both
# tools are optional extras, never build dependencies).
verify:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... || echo "verify: staticcheck findings (warn-only)"; \
	else echo "verify: staticcheck not installed, skipped"; fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./... || echo "verify: govulncheck findings (warn-only)"; \
	else echo "verify: govulncheck not installed, skipped"; fi

clean:
	$(GO) clean ./...
