package pac

// BenchmarkAllocs is the allocation-regression suite: each sub-benchmark
// drives one hot path in its steady state with b.ReportAllocs(), so
// `go test -bench BenchmarkAllocs` prints the allocs/op that the
// per-package gates (Test*SteadyStateAllocFree) enforce as hard
// ceilings. scripts/bench_alloc.sh distils the numbers into
// BENCH_alloc.json.

import (
	"testing"

	"github.com/pacsim/pac/internal/arena"
	"github.com/pacsim/pac/internal/coalesce"
	"github.com/pacsim/pac/internal/hmc"
	"github.com/pacsim/pac/internal/mem"
	"github.com/pacsim/pac/internal/mshr"
	"github.com/pacsim/pac/internal/sim"
)

func BenchmarkAllocs(b *testing.B) {
	b.Run("coalesce-event", func(b *testing.B) {
		pool := arena.NewSlicePool[mem.Request](mem.Request{})
		var n uint64
		p := coalesce.NewPassthrough(16, func() uint64 { n++; return n })
		p.UseParentPool(pool)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n++
			r := mem.Request{ID: n, Addr: mem.BlockAddr(uint64(i%4+1), uint(i%64)), Size: mem.BlockSize, Op: mem.OpLoad}
			for !p.Enqueue(r, false) {
				p.Tick()
				for {
					pkt, ok := p.Pop()
					if !ok {
						break
					}
					pool.Put(pkt.Parents)
				}
			}
			p.Tick()
			for {
				pkt, ok := p.Pop()
				if !ok {
					break
				}
				pool.Put(pkt.Parents)
			}
		}
	})

	b.Run("mshr-cycle", func(b *testing.B) {
		f := mshr.New(mshr.Config{Entries: 8, MaxSubentries: 8, Adaptive: true, MaxBlocks: 4})
		var parents [1]mem.Request
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			base := uint64(i % 64 * 4)
			parents[0] = mem.Request{ID: uint64(i + 1), Addr: base << mem.BlockShift, Op: mem.OpLoad}
			pkt := mem.Coalesced{
				ID: uint64(i + 1), Addr: base << mem.BlockShift,
				Size: 4 * mem.BlockSize, Op: mem.OpLoad, Parents: parents[:],
			}
			e, ok := f.Allocate(pkt)
			if !ok {
				b.Fatal("allocate failed")
			}
			f.Release(e)
		}
	})

	b.Run("hmc-submit-pop", func(b *testing.B) {
		d := hmc.New(hmc.DefaultConfig())
		now := int64(0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d.Submit(mem.Coalesced{ID: uint64(i + 1), Addr: uint64(i%32) * 256, Size: 4 * mem.BlockSize, Op: mem.OpLoad}, now)
			for len(d.PopCompleted(now)) == 0 {
				now += 50
			}
		}
	})

	b.Run("sim-run-warm", func(b *testing.B) {
		// Whole simulations sharing one Scratch: allocs/op here is the
		// per-run residue — machine construction plus whatever growth
		// the arena has not yet absorbed.
		sc := sim.NewScratch()
		cfg := DefaultSimConfig("GS", ModePAC)
		cfg.Procs = []ProcSpec{{Benchmark: "GS", Cores: 2}}
		cfg.Scale = 0.02
		cfg.AccessesPerCore = 2_000
		cfg.Scratch = sc
		if _, err := RunBenchmark(cfg); err != nil { // warm the arena
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := RunBenchmark(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}
