// Quickstart: drive the paged adaptive coalescer directly with a handful
// of raw requests and watch them merge into adaptive-size HMC packets.
//
// This reproduces the paper's Figure 5 worked example: five requests from
// the LLC while running STREAM — reads on page 0x9 blocks 1 and 2, writes
// on page 0xA blocks 1 and 2, and a lone read on page 0xB block 5 —
// coalesce into two 128B packets plus one 64B bypass.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"

	"github.com/pacsim/pac"
)

func main() {
	c := pac.NewCoalescer(pac.DefaultCoalescerParams())

	block := func(page uint64, blk uint64) uint64 { return page<<12 | blk<<6 }
	requests := []pac.Request{
		{ID: 1, Addr: block(0x9, 1), Size: 64, Op: pac.OpLoad},
		{ID: 2, Addr: block(0xA, 2), Size: 64, Op: pac.OpStore},
		{ID: 3, Addr: block(0xB, 5), Size: 64, Op: pac.OpLoad},
		{ID: 4, Addr: block(0x9, 2), Size: 64, Op: pac.OpLoad},
		{ID: 5, Addr: block(0xA, 1), Size: 64, Op: pac.OpStore},
	}
	fmt.Println("raw requests from the LLC:")
	for _, r := range requests {
		fmt.Printf("  %v\n", r)
		if !c.Offer(r, r.Op == pac.OpStore) {
			panic("input queue full")
		}
	}

	fmt.Println("\ncoalesced packets to the HMC:")
	for _, pkt := range c.Flush(200) {
		kind := "coalesced"
		if pkt.Bypassed {
			kind = "bypassed (single request)"
		}
		fmt.Printf("  %v  [%s]\n", pkt, kind)
	}

	st := c.Stats()
	fmt.Printf("\ncoalescing efficiency: %.2f%% (paper Eq. 1)\n", st.CoalescingEfficiency())
	fmt.Printf("requests that skipped stages 2-3: %d\n", st.Bypassed)
}
