// Graph analytics scenario: the paper's motivating workload class.
//
// Runs the two graph benchmarks of the suite — BFS (GAPBS) and SSCA#2 —
// through the full simulated machine under all three coalescing
// configurations and contrasts them with a dense kernel (GS). It shows
// the paper's central trade-off: spatially dense request streams coalesce
// and speed up dramatically, while scattered graph traversals mostly
// bypass the coalescer (and, thanks to the network controller, are not
// penalised by its aggregation timeout).
//
// Run: go run ./examples/graphanalytics
package main

import (
	"fmt"
	"os"

	"github.com/pacsim/pac"
)

func main() {
	fmt.Println("graph analytics vs dense access on 3D-stacked memory")
	fmt.Println()
	fmt.Printf("%-8s %12s %12s %14s %14s\n",
		"bench", "PAC eff %", "speedup %", "conflicts -%", "energy -%")
	for _, bench := range []string{"BFS", "SSCA2", "GS"} {
		cfg := pac.DefaultSimConfig(bench, pac.ModePAC)
		cfg.Procs = []pac.ProcSpec{{Benchmark: bench, Cores: 4}}
		cfg.AccessesPerCore = 40_000
		cmp, err := pac.CompareModes(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphanalytics:", err)
			os.Exit(1)
		}
		fmt.Printf("%-8s %12.2f %12.2f %14.2f %14.2f\n",
			bench,
			cmp.PAC.CoalescingEfficiency(),
			cmp.Speedup(),
			cmp.BankConflictReduction(),
			cmp.EnergySaving())
	}
	fmt.Println()
	fmt.Println("BFS scatters across pages (low efficiency, modest gain);")
	fmt.Println("GS's sorted gathers coalesce into large packets (big gain).")
}
