// Portability scenario (paper §4.1): the same coalescing logic serves
// different 3D-stacked memory generations by adjusting only the block
// sequence width and coalescing table — HMC 1.0 (128B max request),
// HMC 2.1 (256B), and HBM (1KB rows, 16-block sequences).
//
// The example feeds an identical 16-block adjacent run through a PAC
// configured for each device profile and shows how the packet sizes adapt.
//
// Run: go run ./examples/hbmport
package main

import (
	"fmt"

	"github.com/pacsim/pac"
)

func main() {
	profiles := []pac.DeviceProfile{pac.HMC10, pac.HMC21, pac.HBM}

	fmt.Println("one 16-block (1KB) adjacent run, coalesced for each device:")
	fmt.Println()
	for _, dev := range profiles {
		params := pac.DefaultCoalescerParams()
		params.Device = dev
		c := pac.NewCoalescer(params)
		for blk := uint64(0); blk < 16; blk++ {
			r := pac.Request{ID: blk + 1, Addr: 0x77000000 + blk*64, Size: 64, Op: pac.OpLoad}
			if !c.Offer(r, false) {
				panic("queue full")
			}
		}
		pkts := c.Flush(400)
		fmt.Printf("%-8s (max request %4dB): %2d packets:", dev.Name, dev.MaxReqBytes, len(pkts))
		for _, p := range pkts {
			fmt.Printf(" %dB", p.Size)
		}
		st := c.Stats()
		fmt.Printf("   efficiency %.1f%%\n", st.CoalescingEfficiency())
	}
	fmt.Println()
	fmt.Println("no coalescing logic changed between rows — only the block-sequence width")
	fmt.Println("and the coalescing table, exactly as paper §4.1 argues")
}
