// Prefetch coalescing scenario (paper §4.2): "PAC can coalesce not only
// raw requests but also the prefetch requests ... As such, PAC lowers the
// bandwidth overhead and memory access latency of cache prefetching with
// the 3D-stacked memory."
//
// Runs a dense streaming kernel (MG) with the LLC stride prefetcher
// enabled and disabled, under both PAC and the non-aggregating baseline.
// With the prefetcher on, each demand miss arrives at the coalescer in a
// group with its prefetches, which PAC merges into a single large packet;
// without it, misses arrive alone and most coalescing opportunity is gone.
//
// Run: go run ./examples/prefetchdemo
package main

import (
	"fmt"
	"os"

	"github.com/pacsim/pac"
)

func runOnce(mode pac.Mode, prefetch bool) *pac.Result {
	cfg := pac.DefaultSimConfig("MG", mode)
	cfg.Procs = []pac.ProcSpec{{Benchmark: "MG", Cores: 4}}
	cfg.AccessesPerCore = 40_000
	if !prefetch {
		cfg.Prefetch.Degree = -1 // disable the stride prefetcher
	}
	res, err := pac.RunBenchmark(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "prefetchdemo:", err)
		os.Exit(1)
	}
	return res
}

func main() {
	fmt.Println("prefetch coalescing on MG (multigrid sweeps)")
	fmt.Println()
	fmt.Printf("%-28s %12s %12s %14s\n", "configuration", "PAC eff %", "packets", "conflicts")
	for _, c := range []struct {
		name     string
		prefetch bool
	}{
		{"with stride prefetcher", true},
		{"without prefetcher", false},
	} {
		res := runOnce(pac.ModePAC, c.prefetch)
		fmt.Printf("%-28s %12.2f %12d %14d\n",
			c.name, res.CoalescingEfficiency(), res.MemPackets, res.HMC.BankConflicts)
	}

	fmt.Println()
	withPF := runOnce(pac.ModePAC, true)
	basePF := runOnce(pac.ModeNone, true)
	fmt.Printf("prefetch traffic: %d requests; PAC folds miss+prefetch groups into\n", withPF.PrefetchRequests)
	fmt.Printf("%d packets where the baseline dispatches %d (%.1fx reduction)\n",
		withPF.MemPackets, basePF.MemPackets,
		float64(basePF.MemPackets)/float64(withPF.MemPackets))
}
