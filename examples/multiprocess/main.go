// Multiprocessing scenario (paper Figure 6b): two processes with
// different memory access patterns co-run on distinct cores of the same
// processor, interleaving their request streams at the shared coalescer.
//
// Because distinct processes live in disjoint page frames, a conventional
// MSHR-based coalescer loses about half of its merging opportunities,
// while PAC's page-granular streams isolate the processes from each other
// and degrade only mildly.
//
// Run: go run ./examples/multiprocess
package main

import (
	"fmt"
	"os"

	"github.com/pacsim/pac"
)

func run(procs []pac.ProcSpec, mode pac.Mode) *pac.Result {
	cfg := pac.DefaultSimConfig(procs[0].Benchmark, mode)
	cfg.Procs = procs
	cfg.AccessesPerCore = 40_000
	res, err := pac.RunBenchmark(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "multiprocess:", err)
		os.Exit(1)
	}
	return res
}

func main() {
	single := []pac.ProcSpec{{Benchmark: "LU", Cores: 8}}
	multi := []pac.ProcSpec{
		{Benchmark: "LU", Cores: 4},
		{Benchmark: "SP", Cores: 4},
	}

	fmt.Println("coalescing efficiency: single process vs multiprocessing")
	fmt.Println()
	fmt.Printf("%-22s %10s %10s\n", "configuration", "PAC %", "DMC %")
	for _, c := range []struct {
		name  string
		procs []pac.ProcSpec
	}{
		{"LU alone (8 cores)", single},
		{"LU + SP (4+4)", multi},
	} {
		p := run(c.procs, pac.ModePAC)
		d := run(c.procs, pac.ModeDMC)
		fmt.Printf("%-22s %10.2f %10.2f\n",
			c.name, p.CoalescingEfficiency(), d.CoalescingEfficiency())
	}
	fmt.Println()
	fmt.Println("the paper observes the same asymmetry: interleaved processes occupy the")
	fmt.Println("MSHRs with uncoalescable requests from disparate page frames, degrading")
	fmt.Println("the conventional DMC's merging, while page-granular streams stay stable")
}
