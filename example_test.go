package pac_test

// Runnable documentation examples for the public API (go doc / godoc).

import (
	"fmt"

	"github.com/pacsim/pac"
)

// ExampleCoalescer reproduces the paper's Figure 5 coalescing example on
// the standalone pipeline.
func ExampleCoalescer() {
	c := pac.NewCoalescer(pac.DefaultCoalescerParams())
	block := func(page, blk uint64) uint64 { return page<<12 | blk<<6 }

	// Two reads on page 0x9 (blocks 1, 2) and one lone read on 0xB.
	c.Offer(pac.Request{ID: 1, Addr: block(0x9, 1), Size: 64, Op: pac.OpLoad}, false)
	c.Offer(pac.Request{ID: 2, Addr: block(0x9, 2), Size: 64, Op: pac.OpLoad}, false)
	c.Offer(pac.Request{ID: 3, Addr: block(0xB, 5), Size: 64, Op: pac.OpLoad}, false)

	for _, pkt := range c.Flush(200) {
		fmt.Printf("%dB packet with %d raw requests\n", pkt.Size, len(pkt.Parents))
	}
	// Unordered output:
	// 128B packet with 2 raw requests
	// 64B packet with 1 raw requests
}

// ExampleCoalescer_deviceProfiles shows the paper's §4.1 portability: the
// same pipeline targets HMC 1.0, HMC 2.1 or HBM by swapping the device
// profile.
func ExampleCoalescer_deviceProfiles() {
	for _, dev := range []pac.DeviceProfile{pac.HMC10, pac.HMC21, pac.HBM} {
		params := pac.DefaultCoalescerParams()
		params.Device = dev
		c := pac.NewCoalescer(params)
		for blk := uint64(0); blk < 16; blk++ { // one 1KB adjacent run
			c.Offer(pac.Request{ID: blk + 1, Addr: 0x40000 + blk*64, Size: 64, Op: pac.OpLoad}, false)
		}
		fmt.Printf("%s: %d packets\n", dev.Name, len(c.Flush(400)))
	}
	// Output:
	// HMC-1.0: 8 packets
	// HMC-2.1: 4 packets
	// HBM: 1 packets
}

// ExampleBenchmarks lists the paper's evaluation suite.
func ExampleBenchmarks() {
	fmt.Println(len(pac.Benchmarks()), "benchmarks, first:", pac.Benchmarks()[0])
	// Output:
	// 14 benchmarks, first: STREAM
}

// ExampleNewCustomWorkload drives the full machine with a user-defined
// workload: a blocked kernel reading a private matrix and gathering from
// a shared table.
func ExampleNewCustomWorkload() {
	spec := pac.CustomWorkloadSpec{
		Name: "MYKERNEL",
		Regions: []pac.WorkloadRegion{
			{Name: "matrix", Bytes: 1 << 20},
			{Name: "table", Bytes: 1 << 20, Shared: true},
		},
		Phases: []pac.WorkloadPhase{
			{Region: "matrix", Pattern: pac.PatternSeq, Op: "load", Run: 16},
			{Region: "table", Pattern: pac.PatternBurst, Op: "load", Run: 8},
			{Region: "matrix", Pattern: pac.PatternSeq, Op: "store", Run: 8},
		},
	}
	gen, err := pac.NewCustomWorkload(spec, 2, 7)
	if err != nil {
		panic(err)
	}
	cfg := pac.DefaultSimConfig("MYKERNEL", pac.ModePAC)
	cfg.Procs = []pac.ProcSpec{{Benchmark: "MYKERNEL", Cores: 2}}
	cfg.Generators = []pac.WorkloadGenerator{gen}
	cfg.AccessesPerCore = 5000
	res, err := pac.RunBenchmark(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println("coalesced more than a third:", res.CoalescingEfficiency() > 33)
	// Output:
	// coalesced more than a third: true
}
